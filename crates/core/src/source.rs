//! Frame-based ingestion: the streaming counterpart of the one-shot
//! compile→execute surface.
//!
//! StreamGrid's workloads are *streams* — a LiDAR sensor sweeps ten
//! times a second, a renderer draws scene after scene — so the
//! first-class unit of execution is a [`Frame`] (one cloud's worth of
//! source elements) pulled from a [`FrameSource`]. A
//! [`crate::session::Session`] consumes a source with
//! [`crate::session::Session::stream`], executing every frame through
//! the compiled pipeline and returning a [`StreamReport`] with
//! per-frame results and stream-level aggregates.
//!
//! Real frame streams rarely repeat an exact size (every LiDAR sweep
//! returns a slightly different point count), and a naive per-size
//! compile would pay one ILP solve per frame. [`SizeBucketing`] rounds
//! frame sizes *up* to a bucket before compiling, trading a bounded
//! amount of over-provisioned work for compile-cache hits;
//! [`StreamReport::solver_invocations`] records the solves actually
//! paid so the amortization is testable.

use serde::{Deserialize, Serialize};
use streamgrid_pointcloud::PointCloud;
use streamgrid_verify::bucketing_blowup;

use crate::framework::{ExecuteOptions, ExecutionReport};

/// Per-frame payload statistics a source reports alongside the element
/// count (what the scheduler sees) — provenance for reports and
/// admission control, not an input to compilation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameStats {
    /// Points the payload carries (for synthetic sources: the element
    /// count itself).
    pub points: u64,
    /// Serialized payload size in bytes.
    pub payload_bytes: u64,
}

/// One cloud's worth of streamed input: the unit
/// [`crate::session::Session::stream`] schedules and executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Monotone frame id within its source.
    pub id: u64,
    /// Source elements the frame streams through the pipeline (what the
    /// compiler's chunking divides).
    pub elements: u64,
    /// Payload statistics.
    pub stats: FrameStats,
}

impl Frame {
    /// A frame with no real payload behind it, `elements` wide (4-byte
    /// elements, matching the engine's buffer accounting).
    pub fn synthetic(id: u64, elements: u64) -> Self {
        Frame {
            id,
            elements,
            stats: FrameStats {
                points: elements,
                payload_bytes: elements * 4,
            },
        }
    }
}

/// A pull-based stream of [`Frame`]s.
///
/// Sources are consumed once, front to back; a finite source signals
/// exhaustion by returning `None`. Built-in adapters:
/// [`SyntheticSource`] (fixed-size frames), [`ReplaySource`] (a recorded
/// sequence of sizes), and [`DatasetSource`] (frames backed by real
/// generated point clouds, e.g. the dataset iterators in
/// `streamgrid_pointcloud::datasets::stream`).
///
/// # Examples
///
/// A custom source is a few lines — here, a sensor whose sweeps shrink
/// as it spins down:
///
/// ```
/// use streamgrid_core::source::{Frame, FrameSource};
///
/// struct SpinDown {
///     next: u64,
/// }
///
/// impl FrameSource for SpinDown {
///     fn next_frame(&mut self) -> Option<Frame> {
///         let elements = 1024u64.checked_sub(self.next * 256).filter(|&e| e > 0)?;
///         let id = self.next;
///         self.next += 1;
///         Some(Frame::synthetic(id, elements))
///     }
/// }
///
/// let mut source = SpinDown { next: 0 };
/// let sizes: Vec<u64> = std::iter::from_fn(|| source.next_frame())
///     .map(|f| f.elements)
///     .collect();
/// assert_eq!(sizes, [1024, 768, 512, 256]);
/// ```
pub trait FrameSource {
    /// Pulls the next frame, or `None` when the stream is exhausted.
    fn next_frame(&mut self) -> Option<Frame>;

    /// Bounds on the number of frames remaining, `Iterator`-style:
    /// `(lower, upper)` with `None` for "unknown / unbounded".
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }

    /// A cheap projection of how many frames remain, or `None` when the
    /// source cannot say without draining itself — what admission
    /// control (e.g. `streamgrid-serve`) uses to estimate a stream's
    /// load before committing pool capacity to it. The default derives
    /// the upper bound of [`FrameSource::size_hint`], so a source that
    /// implements only [`FrameSource::next_frame`] reports `None` and
    /// keeps its pre-existing behavior everywhere else.
    fn remaining_frames(&self) -> Option<u64> {
        self.size_hint().1.map(|n| n as u64)
    }
}

/// Forwarding impl so a session can stream from a borrowed source
/// without consuming it.
impl<S: FrameSource + ?Sized> FrameSource for &mut S {
    fn next_frame(&mut self) -> Option<Frame> {
        (**self).next_frame()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }

    fn remaining_frames(&self) -> Option<u64> {
        (**self).remaining_frames()
    }
}

/// `frames` identical frames of `elements_per_frame` source elements —
/// the streaming spelling of the old scalar `run(total_elements)`
/// surface, and the right source for steady-state throughput studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSource {
    elements_per_frame: u64,
    frames: u64,
    next: u64,
}

impl SyntheticSource {
    /// A source of `frames` frames, each `elements_per_frame` wide.
    pub fn new(elements_per_frame: u64, frames: u64) -> Self {
        SyntheticSource {
            elements_per_frame,
            frames,
            next: 0,
        }
    }
}

impl FrameSource for SyntheticSource {
    fn next_frame(&mut self) -> Option<Frame> {
        if self.next >= self.frames {
            return None;
        }
        let frame = Frame::synthetic(self.next, self.elements_per_frame);
        self.next += 1;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.frames - self.next) as usize;
        (left, Some(left))
    }
}

/// Replays a recorded sequence of frame sizes — what
/// [`crate::session::Session::run_batch`] wraps, and the source to use
/// when reproducing a trace without its payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySource {
    sizes: Vec<u64>,
    next: usize,
}

impl ReplaySource {
    /// A source replaying `sizes` in order, one frame per entry.
    pub fn new(sizes: &[u64]) -> Self {
        ReplaySource {
            sizes: sizes.to_vec(),
            next: 0,
        }
    }
}

impl FrameSource for ReplaySource {
    fn next_frame(&mut self) -> Option<Frame> {
        let &elements = self.sizes.get(self.next)?;
        let frame = Frame::synthetic(self.next as u64, elements);
        self.next += 1;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.sizes.len() - self.next;
        (left, Some(left))
    }
}

/// Bridges any iterator of point clouds (dataset generators, decoded
/// sensor logs) into a [`FrameSource`].
///
/// The bridge lives here rather than in `streamgrid-pointcloud` so the
/// substrate crate never depends on `streamgrid-core`: dataset streams
/// like `datasets::stream::LidarStream` yield their natural item types
/// and convert via `Into<PointCloud>`.
///
/// Each cloud of `n` points becomes a frame of
/// `n × elements_per_point` source elements (default 3 — one element
/// per coordinate, the `[n, 3]` input shape of Tbl. 1) with
/// [`FrameStats`] recording the point count and a 12-byte-per-point
/// payload estimate.
#[derive(Debug, Clone)]
pub struct DatasetSource<I> {
    iter: I,
    elements_per_point: u64,
    next_id: u64,
}

impl<I> DatasetSource<I>
where
    I: Iterator,
    I::Item: Into<PointCloud>,
{
    /// Wraps `iter` with the default 3 elements per point.
    pub fn new(iter: I) -> Self {
        DatasetSource {
            iter,
            elements_per_point: 3,
            next_id: 0,
        }
    }

    /// Overrides how many source elements each point contributes.
    ///
    /// # Panics
    ///
    /// Panics if `elements_per_point` is zero.
    pub fn with_elements_per_point(mut self, elements_per_point: u64) -> Self {
        assert!(elements_per_point > 0, "a point must map to ≥ 1 element");
        self.elements_per_point = elements_per_point;
        self
    }
}

impl<I> FrameSource for DatasetSource<I>
where
    I: Iterator,
    I::Item: Into<PointCloud>,
{
    fn next_frame(&mut self) -> Option<Frame> {
        let cloud: PointCloud = self.iter.next()?.into();
        let points = cloud.len() as u64;
        let frame = Frame {
            id: self.next_id,
            // An empty sweep still occupies a schedule slot: floor at
            // one element so the compiler always has work to place.
            elements: (points * self.elements_per_point).max(1),
            stats: FrameStats {
                points,
                payload_bytes: points * 12,
            },
        };
        self.next_id += 1;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

/// How frame sizes map to compile-cache buckets.
///
/// Compiling pays one ILP solve per distinct `(config, chunk_elements)`
/// key, so a stream of ever-so-slightly different frame sizes would
/// solve on almost every frame. Bucketing rounds each frame size **up**
/// to a bucket before compiling: the schedule provisions for the bucket
/// (never less than the frame, so deterministic-termination guarantees
/// hold), and all frames in a bucket share one solve. The trade-off is
/// explicit: larger buckets mean more rounded-up work per frame but
/// fewer solves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeBucketing {
    /// No rounding: one compile per distinct frame size. Right for
    /// replayed traces with few distinct sizes.
    #[default]
    Exact,
    /// Round up to the next power of two: at most `log2(max/min)`
    /// buckets over any size range, ≤ 2× scheduled overhead per frame.
    Pow2,
    /// Round up to the next multiple of `step` elements: overhead is
    /// bounded by `step - 1` elements per frame.
    Quantize(u64),
}

impl SizeBucketing {
    /// The bucket `elements` falls in — always `>= elements.max(1)`.
    pub fn bucket(self, elements: u64) -> u64 {
        let elements = elements.max(1);
        match self {
            SizeBucketing::Exact => elements,
            SizeBucketing::Pow2 => elements.next_power_of_two(),
            SizeBucketing::Quantize(step) => {
                let step = step.max(1);
                elements.div_ceil(step) * step
            }
        }
    }
}

/// Knobs for [`crate::session::Session::stream`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamOptions {
    /// Frame-size → compile-bucket policy ([`SizeBucketing::Exact`] by
    /// default).
    pub bucketing: SizeBucketing,
    /// Execution options; `None` uses the spec's defaults
    /// ([`ExecuteOptions::for_spec`]).
    pub exec: Option<ExecuteOptions>,
    /// Stop after this many frames even if the source has more — the
    /// way to stream a bounded prefix of an unbounded source.
    pub max_frames: Option<u64>,
    /// Worker threads the frame *executions* fan out across. `0` and
    /// `1` both execute inline; frames are always pulled and compiled
    /// in arrival order on the calling thread, and executions are
    /// deterministic, so every worker count produces a bit-identical
    /// [`StreamReport`].
    pub workers: usize,
}

impl StreamOptions {
    /// Defaults with the given bucketing policy.
    pub fn bucketed(bucketing: SizeBucketing) -> Self {
        StreamOptions {
            bucketing,
            ..StreamOptions::default()
        }
    }

    /// Defaults with frame executions overlapped across `workers`
    /// threads (see [`StreamOptions::workers`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use streamgrid_core::source::StreamOptions;
    ///
    /// let options = StreamOptions::workers(4);
    /// assert_eq!(options.workers, 4);
    /// assert_eq!(options.bucketing, Default::default());
    /// ```
    pub fn workers(workers: usize) -> Self {
        StreamOptions {
            workers,
            ..StreamOptions::default()
        }
    }

    /// Returns the options with explicit execution options.
    pub fn with_exec(mut self, exec: ExecuteOptions) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Returns the options with a frame cap.
    pub fn with_max_frames(mut self, max_frames: u64) -> Self {
        self.max_frames = Some(max_frames);
        self
    }

    /// Returns the options with the execution worker count replaced.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

/// One streamed frame's result: the frame, the bucket it was scheduled
/// at, and the full execution report.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameReport {
    /// The frame as the source produced it.
    pub frame: Frame,
    /// Elements the compiled schedule provisioned for (the frame's
    /// [`SizeBucketing`] bucket; `>= frame.elements`).
    pub scheduled_elements: u64,
    /// The frame's compile + run + energy report.
    pub report: ExecutionReport,
}

/// The result of streaming a [`FrameSource`] through a session:
/// per-frame reports plus stream-level aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Per-frame results, in arrival order.
    pub frames: Vec<FrameReport>,
    /// ILP solves this stream paid (compile-cache misses during the
    /// stream — solves already cached by earlier session use cost
    /// nothing here).
    pub solver_invocations: u64,
    /// The bucketing policy the stream ran under.
    pub bucketing: SizeBucketing,
}

impl StreamReport {
    /// Frames executed.
    pub fn frame_count(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Source elements the frames actually carried.
    pub fn source_elements(&self) -> u64 {
        self.frames.iter().map(|f| f.frame.elements).sum()
    }

    /// Elements the schedules provisioned for (bucket sizes). The
    /// difference to [`StreamReport::source_elements`] is the price of
    /// bucketing.
    pub fn scheduled_elements(&self) -> u64 {
        self.frames.iter().map(|f| f.scheduled_elements).sum()
    }

    /// Total simulated cycles across all frames.
    pub fn total_cycles(&self) -> u64 {
        self.frames.iter().map(|f| f.report.run.cycles).sum()
    }

    /// Total energy across all frames in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.frames.iter().map(|f| f.report.total_uj()).sum()
    }

    /// Sharded-engine backoff telemetry summed across all frames (all
    /// zeros when no frame ran sharded). Host-timing-dependent — useful
    /// for explaining wall time, never part of result equality.
    pub fn total_backoff(&self) -> streamgrid_sim::BackoffStats {
        let mut total = streamgrid_sim::BackoffStats::default();
        for f in &self.frames {
            total.merge(&f.report.run.backoff);
        }
        total
    }

    /// Frames executed per ILP solve paid — the amortization factor
    /// bucketing buys. Infinite when the whole stream hit the cache.
    pub fn frames_per_solve(&self) -> f64 {
        self.frames.len() as f64 / self.solver_invocations as f64
    }

    /// Median per-frame cycles (nearest-rank; 0 on an empty stream).
    pub fn p50_frame_cycles(&self) -> u64 {
        self.percentile_frame_cycles(0.50)
    }

    /// 95th-percentile per-frame cycles (nearest-rank; 0 on an empty
    /// stream).
    pub fn p95_frame_cycles(&self) -> u64 {
        self.percentile_frame_cycles(0.95)
    }

    /// 99th-percentile per-frame cycles (nearest-rank; 0 on an empty
    /// stream) — the tail bucket SLO reporting cares about: p95 hides a
    /// 1-in-50 straggler, the max is a single outlier, p99 is the
    /// contract a serving layer can reasonably promise.
    pub fn p99_frame_cycles(&self) -> u64 {
        self.percentile_frame_cycles(0.99)
    }

    /// Worst per-frame cycles (0 on an empty stream).
    pub fn max_frame_cycles(&self) -> u64 {
        self.frames
            .iter()
            .map(|f| f.report.run.cycles)
            .max()
            .unwrap_or(0)
    }

    /// `true` when every frame's report [`ExecutionReport::is_clean`]:
    /// no overflow, no stall, no truncation, stream-wide.
    pub fn all_clean(&self) -> bool {
        self.frames.iter().all(|f| f.report.is_clean())
    }

    /// Lint warnings across the stream: every frame's compile-time
    /// diagnostics, plus a per-frame bucketing-blowup check (SG003) of
    /// the frame's *actual* size against its scheduled bucket — a
    /// finding only the stream can make, since the compiler sees only
    /// the bucket.
    pub fn lint_warning_count(&self) -> u64 {
        self.frames
            .iter()
            .map(|f| {
                f.report.lints.warnings
                    + u64::from(bucketing_blowup(f.frame.elements, f.scheduled_elements).is_some())
            })
            .sum()
    }

    /// Distinct rendered lint messages across the stream, in first-seen
    /// order. Compile lints repeat on every frame sharing a bucket;
    /// deduplication keeps the stream-level view readable.
    pub fn lint_messages(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for f in &self.frames {
            let blowup = bucketing_blowup(f.frame.elements, f.scheduled_elements);
            for m in f
                .report
                .lints
                .messages
                .iter()
                .cloned()
                .chain(blowup.map(|d| d.render()))
            {
                if seen.insert(m.clone()) {
                    out.push(m);
                }
            }
        }
        out
    }

    /// Nearest-rank percentile of per-frame cycles, `q` in `[0, 1]`.
    fn percentile_frame_cycles(&self, q: f64) -> u64 {
        let cycles: Vec<u64> = self.frames.iter().map(|f| f.report.run.cycles).collect();
        nearest_rank(&cycles, q)
    }
}

/// Nearest-rank percentile over `samples`, `q` in `[0, 1]`: the
/// smallest sample such that at least `ceil(q·n)` samples are `<=` it
/// (0 on an empty slice). This is the **one** percentile definition the
/// workspace reports against — [`StreamReport`]'s per-frame cycle
/// percentiles and `streamgrid-serve`'s wall-clock latency SLOs both
/// delegate here, so a p95 in `BENCH_streaming.json` and a p95 in
/// `BENCH_server.json` can never mean subtly different statistics.
///
/// # Examples
///
/// ```
/// use streamgrid_core::source::nearest_rank;
///
/// let samples: Vec<u64> = (1..=100).collect();
/// assert_eq!(nearest_rank(&samples, 0.50), 50);
/// assert_eq!(nearest_rank(&samples, 0.99), 99);
/// assert_eq!(nearest_rank(&samples, 1.00), 100);
/// assert_eq!(nearest_rank(&[], 0.5), 0);
/// ```
pub fn nearest_rank(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_source_yields_fixed_frames() {
        let mut s = SyntheticSource::new(1200, 3);
        assert_eq!(s.size_hint(), (3, Some(3)));
        let frames: Vec<Frame> = std::iter::from_fn(|| s.next_frame()).collect();
        assert_eq!(frames.len(), 3);
        assert!(frames.iter().all(|f| f.elements == 1200));
        assert_eq!(
            frames.iter().map(|f| f.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(s.size_hint(), (0, Some(0)));
    }

    #[test]
    fn replay_source_preserves_order() {
        let mut s = ReplaySource::new(&[5, 9, 2]);
        let sizes: Vec<u64> = std::iter::from_fn(|| s.next_frame())
            .map(|f| f.elements)
            .collect();
        assert_eq!(sizes, vec![5, 9, 2]);
    }

    #[test]
    fn dataset_source_counts_points() {
        use streamgrid_pointcloud::Point3;
        let clouds = vec![
            PointCloud::from_points(vec![Point3::ZERO; 10]),
            PointCloud::from_points(vec![Point3::ZERO; 4]),
            PointCloud::new(),
        ];
        let mut s = DatasetSource::new(clouds.into_iter());
        let a = s.next_frame().unwrap();
        assert_eq!(
            (a.elements, a.stats.points, a.stats.payload_bytes),
            (30, 10, 120)
        );
        let b = s.next_frame().unwrap();
        assert_eq!(b.elements, 12);
        // Empty clouds still schedule one element.
        let c = s.next_frame().unwrap();
        assert_eq!((c.elements, c.stats.points), (1, 0));
        assert!(s.next_frame().is_none());
    }

    #[test]
    fn bucketing_rounds_up() {
        assert_eq!(SizeBucketing::Exact.bucket(937), 937);
        assert_eq!(SizeBucketing::Exact.bucket(0), 1);
        assert_eq!(SizeBucketing::Pow2.bucket(937), 1024);
        assert_eq!(SizeBucketing::Pow2.bucket(1024), 1024);
        assert_eq!(SizeBucketing::Quantize(500).bucket(937), 1000);
        assert_eq!(SizeBucketing::Quantize(500).bucket(1000), 1000);
        assert_eq!(
            SizeBucketing::Quantize(0).bucket(7),
            7,
            "0-step degrades to Exact"
        );
        for policy in [
            SizeBucketing::Exact,
            SizeBucketing::Pow2,
            SizeBucketing::Quantize(64),
        ] {
            for e in [0u64, 1, 63, 64, 65, 1000, 4096] {
                assert!(policy.bucket(e) >= e.max(1), "{policy:?} shrank {e}");
            }
        }
    }

    /// The nearest-rank definition, pinned: rank = ceil(q·n) clamped to
    /// [1, n], 1-indexed into the sorted samples. Shared verbatim by
    /// `StreamReport` cycle percentiles and the serving layer's
    /// wall-clock latency stats.
    #[test]
    fn nearest_rank_percentile_definition() {
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&hundred, 0.50), 50);
        assert_eq!(nearest_rank(&hundred, 0.95), 95);
        assert_eq!(nearest_rank(&hundred, 0.99), 99);
        assert_eq!(nearest_rank(&hundred, 1.00), 100);
        // q = 0 clamps to the first rank, never "zero samples".
        assert_eq!(nearest_rank(&hundred, 0.0), 1);
        // Order of the input never matters.
        assert_eq!(nearest_rank(&[30, 10, 20], 0.50), 20);
        // Small n: ceil(0.5 * 3) = 2 → second-smallest, ceil(0.99 * 3)
        // = 3 → the max; a singleton answers every quantile.
        assert_eq!(nearest_rank(&[7, 3, 5], 0.99), 7);
        assert_eq!(nearest_rank(&[42], 0.01), 42);
        assert_eq!(nearest_rank(&[], 0.99), 0);
    }

    #[test]
    fn remaining_frames_tracks_size_hint() {
        let mut s = SyntheticSource::new(100, 5);
        assert_eq!(s.remaining_frames(), Some(5));
        s.next_frame();
        assert_eq!(s.remaining_frames(), Some(4));
        let mut r = ReplaySource::new(&[5, 9]);
        assert_eq!(r.remaining_frames(), Some(2));
        r.next_frame();
        r.next_frame();
        assert_eq!(r.remaining_frames(), Some(0));
    }

    #[test]
    fn borrowed_sources_stream_without_moving() {
        // The `&mut S` forwarding impl: a generic consumer can take the
        // source by value or by mutable borrow.
        fn pull<S: FrameSource>(mut source: S) -> Option<Frame> {
            source.next_frame()
        }
        let mut s = ReplaySource::new(&[7, 8]);
        assert_eq!(pull(&mut s).unwrap().elements, 7);
        assert_eq!(s.next_frame().unwrap().elements, 8);
    }
}
