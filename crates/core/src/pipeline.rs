//! Open pipeline descriptions: [`PipelineSpec`] and the typed
//! [`PipelineBuilder`] over the Sec. 6 dataflow interface.
//!
//! The paper's pitch is a *programming interface*: developers describe
//! any streaming point-cloud pipeline and StreamGrid compiles it. This
//! module is that surface. A [`PipelineBuilder`] assembles named stages
//! with their Tbl. 1 parameters, checks shapes, rates, and topology at
//! build time, and produces an immutable [`PipelineSpec`] that the
//! framework compiles ([`crate::framework::StreamGrid::compile_spec`]),
//! the registry names ([`crate::registry::PipelineRegistry`]), and a
//! session executes repeatedly ([`crate::session::Session`]).
//!
//! Every failure mode is a typed [`CompileError`] — builder misuse never
//! panics.

use std::fmt;

use serde::Serialize;
use streamgrid_dataflow::{DataflowGraph, GraphError, NodeId, OpKind, Shape};
use streamgrid_optimizer::OptimizeError;
use streamgrid_sim::EngineConfig;

/// Everything that can go wrong between describing a pipeline and
/// holding a compiled design: builder validation, graph validation, and
/// ILP optimization, unified so every layer of the API returns one error
/// type.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Structural graph validation failed (cycle, shape mismatch,
    /// missing producer, zero frequency, duplicate edge).
    Graph(GraphError),
    /// The line-buffer ILP failed (infeasible target or solver error).
    Optimize(OptimizeError),
    /// The pipeline has no source stage: nothing streams in.
    NoSource,
    /// The pipeline has no sink stage: results never leave the engine.
    NoSink,
    /// Two stages share a name (stage names key diagnostics and
    /// constraint labels, so they must be unique).
    DuplicateStage(String),
    /// A non-sink stage has no consumer: its output stream dangles.
    DanglingStage(String),
    /// A [`StageId`] from a different builder was passed to
    /// [`PipelineBuilder::connect`].
    ForeignStage,
    /// A registry already holds a pipeline under this name.
    DuplicateName(String),
    /// No registered pipeline has this name.
    UnknownPipeline(String),
    /// The session promotes lint findings to compile failures
    /// (`SessionBuilder::deny_lints`) and the linter found something;
    /// the payload is the rendered diagnostics, one per line.
    LintDenied(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Graph(e) => write!(f, "invalid pipeline: {e}"),
            CompileError::Optimize(e) => write!(f, "optimization failed: {e}"),
            CompileError::NoSource => write!(f, "pipeline has no source stage"),
            CompileError::NoSink => write!(f, "pipeline has no sink stage"),
            CompileError::DuplicateStage(n) => write!(f, "duplicate stage name {n}"),
            CompileError::DanglingStage(n) => {
                write!(f, "stage {n} produces a stream no stage consumes")
            }
            CompileError::ForeignStage => {
                write!(f, "a stage handle from a different builder was connected")
            }
            CompileError::DuplicateName(n) => {
                write!(f, "a pipeline named {n} is already registered")
            }
            CompileError::UnknownPipeline(n) => write!(f, "no pipeline named {n} is registered"),
            CompileError::LintDenied(msgs) => {
                write!(f, "lints denied by the session:\n{msgs}")
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Graph(e) => Some(e),
            CompileError::Optimize(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CompileError {
    fn from(e: GraphError) -> Self {
        CompileError::Graph(e)
    }
}

impl From<OptimizeError> for CompileError {
    fn from(e: OptimizeError) -> Self {
        CompileError::Optimize(e)
    }
}

/// Handle to a stage added through a [`PipelineBuilder`]. Branded with
/// its builder's identity: passing it to another builder's
/// [`PipelineBuilder::connect`] is a typed [`CompileError::ForeignStage`]
/// at build time, not a silently mis-wired pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageId {
    node: NodeId,
    builder: u64,
}

/// A validated, immutable pipeline description: the dataflow graph, the
/// ids of its global-dependent stages, and the datapath intensity the
/// execution layer defaults to.
///
/// Obtained from [`PipelineBuilder::build`], from a preset
/// ([`PipelineSpec::classification`], …), or from an existing graph via
/// [`PipelineSpec::from_graph`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PipelineSpec {
    name: String,
    graph: DataflowGraph,
    globals: Vec<NodeId>,
    macs_per_element: f64,
}

impl PipelineSpec {
    /// Starts a [`PipelineBuilder`] for a pipeline with this name.
    pub fn builder(name: &str) -> PipelineBuilder {
        PipelineBuilder::new(name)
    }

    /// Wraps an already-assembled [`DataflowGraph`] as a spec, running
    /// the same build-time validation the builder applies.
    ///
    /// # Errors
    ///
    /// Returns the first [`CompileError`] the graph violates.
    pub fn from_graph(name: &str, graph: DataflowGraph) -> Result<Self, CompileError> {
        validate_pipeline(&graph)?;
        let globals = graph
            .nodes()
            .filter(|(_, n)| n.kind.is_global())
            .map(|(id, _)| id)
            .collect();
        Ok(PipelineSpec {
            name: name.to_owned(),
            graph,
            globals,
            macs_per_element: EngineConfig::default().macs_per_element,
        })
    }

    /// The pipeline's name (registry key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying dataflow graph.
    pub fn graph(&self) -> &DataflowGraph {
        &self.graph
    }

    /// Ids of the global-dependent stages.
    pub fn globals(&self) -> &[NodeId] {
        &self.globals
    }

    /// Datapath intensity (MACs per produced element) the execution
    /// layer defaults to for this pipeline.
    pub fn macs_per_element(&self) -> f64 {
        self.macs_per_element
    }

    /// Consumes the spec, yielding the dataflow graph (for callers that
    /// drive the optimizer or simulator layers directly).
    pub fn into_graph(self) -> DataflowGraph {
        self.graph
    }

    /// Returns the spec renamed (registry entries must be unique).
    pub fn renamed(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }
}

/// Typed builder over the Sec. 6 dataflow interface (Listing 1): named
/// stages, shape/rate checking at build time, explicit global-op
/// marking.
///
/// Stage adders return [`StageId`] handles; [`PipelineBuilder::connect`]
/// wires them; [`PipelineBuilder::build`] validates the whole
/// description and returns an immutable [`PipelineSpec`] or a typed
/// [`CompileError`] — never a panic.
///
/// # Examples
///
/// The Fig. 12 pipeline — an 8-stage kNN search feeding a 2×3 stencil:
///
/// ```
/// use streamgrid_core::pipeline::PipelineSpec;
/// use streamgrid_dataflow::Shape;
///
/// let mut b = PipelineSpec::builder("fig12");
/// let src = b.source("reader", Shape::new(1, 3), 1);
/// let knn = b.global_op("knn", Shape::new(1, 3), 1, Shape::new(4, 3), 8, (1, 1), 8);
/// let sten = b.stencil("stencil2x3", Shape::new(1, 3), Shape::new(1, 1), 2, (2, 1));
/// let sink = b.sink("writer", Shape::new(1, 1), 1);
/// b.connect(src, knn).connect(knn, sten).connect(sten, sink);
/// let spec = b.build().expect("a valid pipeline");
/// assert_eq!(spec.globals().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    name: String,
    id: u64,
    graph: DataflowGraph,
    edges: Vec<(StageId, StageId)>,
    macs_per_element: f64,
}

impl PipelineBuilder {
    /// Creates an empty builder for a pipeline with this name.
    pub fn new(name: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_BUILDER_ID: AtomicU64 = AtomicU64::new(0);
        PipelineBuilder {
            name: name.to_owned(),
            id: NEXT_BUILDER_ID.fetch_add(1, Ordering::Relaxed),
            graph: DataflowGraph::new(),
            edges: Vec::new(),
            macs_per_element: EngineConfig::default().macs_per_element,
        }
    }

    fn stage(&self, node: NodeId) -> StageId {
        StageId {
            node,
            builder: self.id,
        }
    }

    /// Sets the default datapath intensity (MACs per produced element)
    /// executions of this pipeline charge for compute energy.
    pub fn macs_per_element(&mut self, macs: f64) -> &mut Self {
        self.macs_per_element = macs;
        self
    }

    /// Adds an off-chip source producing `o_shape` every `o_freq`
    /// cycles.
    pub fn source(&mut self, name: &str, o_shape: Shape, o_freq: u32) -> StageId {
        let node = self.graph.source(name, o_shape, o_freq);
        self.stage(node)
    }

    /// Adds a sink consuming `i_shape` every `i_freq` cycles.
    pub fn sink(&mut self, name: &str, i_shape: Shape, i_freq: u32) -> StageId {
        let node = self.graph.sink(name, i_shape, i_freq);
        self.stage(node)
    }

    /// Adds an elementwise map stage (scaling, per-point MLP, …).
    pub fn map(&mut self, name: &str, i_shape: Shape, o_shape: Shape, stage: u32) -> StageId {
        let node = self.graph.map(name, i_shape, o_shape, stage);
        self.stage(node)
    }

    /// Adds a sliding-window stencil (Listing 1: `stencil(i_shape,
    /// o_shape, stage, reuse)`).
    pub fn stencil(
        &mut self,
        name: &str,
        i_shape: Shape,
        o_shape: Shape,
        stage: u32,
        reuse: (u32, u32),
    ) -> StageId {
        let node = self.graph.stencil(name, i_shape, o_shape, stage, reuse);
        self.stage(node)
    }

    /// Adds a many-to-one reduction (Listing 1: `reduction(i_shape,
    /// o_shape, stage, o_freq)`).
    pub fn reduction(
        &mut self,
        name: &str,
        i_shape: Shape,
        o_shape: Shape,
        stage: u32,
        o_freq: u32,
    ) -> StageId {
        let node = self.graph.reduction(name, i_shape, o_shape, stage, o_freq);
        self.stage(node)
    }

    /// Adds a global-dependent operation (kNN/range search, sorting) —
    /// the explicit marking that routes the stage through Eqn. 7's
    /// global data-dependency constraint and the CS/DT transform.
    #[allow(clippy::too_many_arguments)]
    pub fn global_op(
        &mut self,
        name: &str,
        i_shape: Shape,
        i_freq: u32,
        o_shape: Shape,
        o_freq: u32,
        reuse: (u32, u32),
        stage: u32,
    ) -> StageId {
        let node = self
            .graph
            .global_op(name, i_shape, i_freq, o_shape, o_freq, reuse, stage);
        self.stage(node)
    }

    /// Records the `producer → consumer` stream (one line buffer).
    /// Endpoint and duplication errors surface at
    /// [`PipelineBuilder::build`] as typed [`CompileError`]s.
    pub fn connect(&mut self, producer: StageId, consumer: StageId) -> &mut Self {
        self.edges.push((producer, consumer));
        self
    }

    /// Validates the description and produces the immutable spec.
    ///
    /// Checks, in order: unique stage names, edge endpoints and
    /// uniqueness, presence of a source and a sink, the
    /// [`DataflowGraph::validate`] battery (acyclicity, shape agreement
    /// along every edge, positive rates, producers for every non-source
    /// stage), and that no non-sink stage's output dangles.
    ///
    /// # Errors
    ///
    /// Returns the first [`CompileError`] violated; building never
    /// panics.
    pub fn build(self) -> Result<PipelineSpec, CompileError> {
        let PipelineBuilder {
            name,
            id: builder_id,
            mut graph,
            edges,
            macs_per_element,
        } = self;
        for (id, node) in graph.nodes() {
            if graph
                .nodes()
                .any(|(other, n)| other.index() < id.index() && n.name == node.name)
            {
                return Err(CompileError::DuplicateStage(node.name.clone()));
            }
        }
        for (p, c) in edges {
            if p.builder != builder_id || c.builder != builder_id {
                return Err(CompileError::ForeignStage);
            }
            graph.try_connect(p.node, c.node)?;
        }
        let mut spec = PipelineSpec::from_graph(&name, graph)?;
        spec.macs_per_element = macs_per_element;
        Ok(spec)
    }
}

/// The build-time validation battery shared by [`PipelineBuilder::build`]
/// and [`PipelineSpec::from_graph`].
fn validate_pipeline(graph: &DataflowGraph) -> Result<(), CompileError> {
    if graph.node_count() == 0 {
        return Err(CompileError::Graph(GraphError::Empty));
    }
    if !graph.has_source() {
        return Err(CompileError::NoSource);
    }
    if !graph.has_sink() {
        return Err(CompileError::NoSink);
    }
    graph.validate()?;
    for (id, node) in graph.nodes() {
        if !matches!(node.kind, OpKind::Sink) && graph.consumers(id).is_empty() {
            return Err(CompileError::DanglingStage(node.name.clone()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_builder() -> (PipelineBuilder, StageId, StageId) {
        let mut b = PipelineBuilder::new("t");
        let src = b.source("src", Shape::new(1, 3), 1);
        let sink = b.sink("sink", Shape::new(1, 3), 1);
        (b, src, sink)
    }

    #[test]
    fn minimal_pipeline_builds() {
        let (mut b, src, sink) = linear_builder();
        b.connect(src, sink);
        let spec = b.build().unwrap();
        assert_eq!(spec.name(), "t");
        assert!(spec.globals().is_empty());
        assert_eq!(spec.graph().edge_count(), 1);
    }

    #[test]
    fn builder_rejects_cycles() {
        let mut b = PipelineBuilder::new("cyclic");
        let src = b.source("src", Shape::new(1, 3), 1);
        let a = b.map("a", Shape::new(1, 3), Shape::new(1, 3), 1);
        let c = b.map("c", Shape::new(1, 3), Shape::new(1, 3), 1);
        let sink = b.sink("sink", Shape::new(1, 3), 1);
        b.connect(src, a)
            .connect(a, c)
            .connect(c, a)
            .connect(c, sink);
        assert!(matches!(
            b.build(),
            Err(CompileError::Graph(GraphError::Cycle(_)))
        ));
    }

    #[test]
    fn builder_rejects_shape_mismatch() {
        let mut b = PipelineBuilder::new("mismatch");
        let src = b.source("src", Shape::new(1, 3), 1);
        let m = b.map("wide", Shape::new(1, 4), Shape::new(1, 4), 1);
        let sink = b.sink("sink", Shape::new(1, 4), 1);
        b.connect(src, m).connect(m, sink);
        assert!(matches!(
            b.build(),
            Err(CompileError::Graph(GraphError::ShapeMismatch { .. }))
        ));
    }

    #[test]
    fn builder_rejects_missing_source_and_sink() {
        let mut b = PipelineBuilder::new("no_source");
        let m = b.map("m", Shape::new(1, 3), Shape::new(1, 3), 1);
        let sink = b.sink("sink", Shape::new(1, 3), 1);
        b.connect(m, sink);
        assert_eq!(b.build().unwrap_err(), CompileError::NoSource);

        let mut b = PipelineBuilder::new("no_sink");
        let src = b.source("src", Shape::new(1, 3), 1);
        let m = b.map("m", Shape::new(1, 3), Shape::new(1, 3), 1);
        b.connect(src, m);
        assert_eq!(b.build().unwrap_err(), CompileError::NoSink);
    }

    #[test]
    fn builder_rejects_duplicate_stage_names() {
        let mut b = PipelineBuilder::new("dupe");
        let src = b.source("stage", Shape::new(1, 3), 1);
        let sink = b.sink("stage", Shape::new(1, 3), 1);
        b.connect(src, sink);
        assert_eq!(
            b.build().unwrap_err(),
            CompileError::DuplicateStage("stage".into())
        );
    }

    #[test]
    fn builder_rejects_duplicate_edges() {
        let (mut b, src, sink) = linear_builder();
        b.connect(src, sink).connect(src, sink);
        assert!(matches!(
            b.build(),
            Err(CompileError::Graph(GraphError::DuplicateEdge { .. }))
        ));
    }

    #[test]
    fn builder_rejects_dangling_stages() {
        let mut b = PipelineBuilder::new("dangling");
        let src = b.source("src", Shape::new(1, 3), 1);
        let m = b.map("dead_end", Shape::new(1, 3), Shape::new(1, 3), 1);
        let sink = b.sink("sink", Shape::new(1, 3), 1);
        b.connect(src, m).connect(src, sink);
        assert_eq!(
            b.build().unwrap_err(),
            CompileError::DanglingStage("dead_end".into())
        );
    }

    #[test]
    fn builder_rejects_foreign_handles() {
        let (mut other, foreign_src, _) = linear_builder();
        let _ = &mut other;
        let mut b = PipelineBuilder::new("victim");
        let _src = b.source("src", Shape::new(1, 3), 1);
        let sink = b.sink("sink", Shape::new(1, 3), 1);
        // `foreign_src` has the same index as `_src` but belongs to
        // `other`; wiring it here must be a typed error, not a silent
        // mis-connection.
        b.connect(foreign_src, sink);
        assert_eq!(b.build().unwrap_err(), CompileError::ForeignStage);
    }

    #[test]
    fn build_marks_globals() {
        let mut b = PipelineBuilder::new("g");
        let src = b.source("src", Shape::new(1, 3), 1);
        let knn = b.global_op("knn", Shape::new(1, 3), 1, Shape::new(4, 3), 8, (1, 1), 8);
        let sink = b.sink("sink", Shape::new(3, 3), 1);
        // kNN emits 4×3; sink reads attrs=3, widths agree.
        b.connect(src, knn).connect(knn, sink);
        let spec = b.build().unwrap();
        assert_eq!(spec.globals().len(), 1);
        assert!(spec.graph().node(spec.globals()[0]).kind.is_global());
    }

    #[test]
    fn errors_display_and_chain() {
        let e = CompileError::from(GraphError::Empty);
        assert!(e.to_string().contains("invalid pipeline"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&CompileError::NoSink).is_none());
        assert!(CompileError::UnknownPipeline("x".into())
            .to_string()
            .contains("no pipeline named x"));
    }
}
