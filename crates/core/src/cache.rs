//! Pluggable, shareable schedule caches behind [`crate::session::Session`].
//!
//! An ILP solve is the expensive step of the compile→execute flow, and
//! its output — a [`streamgrid_optimizer::Schedule`] — is a pure
//! function of `(pipeline spec, transform config, chunk size)`. That
//! makes solved schedules a *reusable resource*: across repeated runs,
//! across concurrent sessions, and across processes. This module is the
//! seam that decides the reuse scope:
//!
//! * [`InMemoryCache`] — one session's private map (the default; the
//!   pre-existing `Session` behavior);
//! * [`SharedCache`] — an `Arc`-shared [`InMemoryCache`], so N sessions
//!   over the same spec/config pay **one** solve between them;
//! * [`FileCache`] — schedules persisted as hand-rolled JSON
//!   ([`streamgrid_optimizer::json`]), so a *fresh process* over a warm
//!   directory pays **zero** solves.
//!
//! Solver accounting lives here too: [`ScheduleCache::solver_invocations`]
//! counts the solves a cache actually paid, which is what makes
//! shared-cache and warm-file-cache hits observable in tests and bench
//! reports.
//!
//! The in-memory tiers are unbounded by default but accept a capacity
//! ([`InMemoryCache::with_capacity`] / [`SharedCache::with_capacity`]):
//! past it the least-recently-requested design is evicted, so a
//! long-lived server streaming many specs × bucket sizes holds a bounded
//! working set and re-solves only what it actually stopped using.
//!
//! # Examples
//!
//! Two sessions sharing one cache pay one solve between them:
//!
//! ```
//! use streamgrid_core::apps::AppDomain;
//! use streamgrid_core::cache::{ScheduleCache, SharedCache};
//! use streamgrid_core::framework::StreamGrid;
//! use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
//!
//! let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)));
//! let shared = SharedCache::new();
//! let mut a = fw
//!     .session_builder(AppDomain::Classification.spec())
//!     .with_cache(shared.clone())
//!     .build();
//! let mut b = fw
//!     .session_builder(AppDomain::Classification.spec())
//!     .with_cache(shared.clone())
//!     .build();
//! a.run(4 * 300).unwrap();
//! b.run(4 * 300).unwrap(); // hits the schedule `a` already solved
//! assert_eq!(shared.solver_invocations(), 1);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use streamgrid_optimizer::json::{self, JsonValue};

use crate::framework::{CompileSummary, CompiledPipeline, StreamGrid};
use crate::pipeline::{CompileError, PipelineSpec};
use crate::transform::StreamGridConfig;

/// A split configuration flattened to hashable integers: grid dims plus
/// window kernel and stride.
type SplitKey = (u32, u32, u32, (u32, u32, u32), (u32, u32, u32));

/// Hashable fingerprint of a [`StreamGridConfig`] (the config carries an
/// `f64` deadline, so it cannot derive `Eq`/`Hash` itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ConfigKey {
    splitting: Option<SplitKey>,
    termination: Option<u64>,
}

impl ConfigKey {
    pub(crate) fn of(config: &StreamGridConfig) -> Self {
        ConfigKey {
            splitting: config.splitting.map(|s| {
                (
                    s.dims.nx,
                    s.dims.ny,
                    s.dims.nz,
                    s.window.kernel,
                    s.window.stride,
                )
            }),
            termination: config.termination.map(|t| t.deadline_fraction.to_bits()),
        }
    }
}

/// FNV-1a over a byte string — a stable, process-independent hash
/// (`std`'s `Hasher`s are seeded per process, so they cannot name cache
/// files).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Stable textual identity of a [`PipelineSpec`]: covers the name, the
/// graph structure (every Tbl. 1 parameter), and the datapath
/// intensity. The [`CacheKey`] fingerprint hashes this string; caches
/// compare the string itself on in-memory hits, so a 64-bit hash
/// collision between two different specs can cost an extra solve but
/// never serves the wrong design.
pub(crate) fn spec_repr(spec: &PipelineSpec) -> String {
    format!("{spec:?}")
}

/// FNV-1a fingerprint of a [`spec_repr`] string.
pub(crate) fn spec_fingerprint(repr: &str) -> u64 {
    fnv1a(repr.as_bytes())
}

/// The identity of one compiled design: which spec, which transform
/// config, which chunk size. Two compile requests with equal keys are
/// guaranteed to produce bit-identical [`CompiledPipeline`]s, so a cache
/// may serve either's result for both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    spec_fingerprint: u64,
    config: ConfigKey,
    chunk_elements: u64,
}

impl CacheKey {
    /// Elements per chunk the keyed design provisions.
    pub fn chunk_elements(&self) -> u64 {
        self.chunk_elements
    }

    /// A process-independent file stem for this key (what [`FileCache`]
    /// names its entries) — stable across runs and binaries.
    pub fn file_stem(&self) -> String {
        let config_hash = fnv1a(format!("{:?}", self.config).as_bytes());
        format!(
            "{:016x}-{:016x}-{}",
            self.spec_fingerprint, config_hash, self.chunk_elements
        )
    }
}

/// One compile a cache has been asked to satisfy: the key plus
/// everything needed to actually produce the design — by paying a solve
/// ([`CompileRequest::solve`]) or by rebuilding around a persisted
/// schedule ([`CompileRequest::rebuild`]).
#[derive(Debug)]
pub struct CompileRequest<'a> {
    spec: &'a PipelineSpec,
    spec_repr: &'a str,
    config: &'a StreamGridConfig,
    scheduled_elements: u64,
    key: CacheKey,
}

impl<'a> CompileRequest<'a> {
    pub(crate) fn new(
        spec: &'a PipelineSpec,
        spec_repr: &'a str,
        fingerprint: u64,
        config: &'a StreamGridConfig,
        scheduled_elements: u64,
    ) -> Self {
        // Ceiling division, mirroring `StreamGrid::compile_spec`: the
        // key must be the chunk size the compile actually provisions.
        let chunk_elements = scheduled_elements.div_ceil(config.chunk_count()).max(1);
        CompileRequest {
            spec,
            spec_repr,
            config,
            scheduled_elements,
            key: CacheKey {
                spec_fingerprint: fingerprint,
                config: ConfigKey::of(config),
                chunk_elements,
            },
        }
    }

    /// The request's cache key.
    pub fn key(&self) -> CacheKey {
        self.key
    }

    /// The spec's full textual identity (what the key's fingerprint
    /// hashes). In-memory caches compare this on a hit so a fingerprint
    /// collision between different specs is detected instead of served.
    pub fn spec_repr(&self) -> &str {
        self.spec_repr
    }

    /// Source elements the design must cover (the frame's bucket).
    pub fn scheduled_elements(&self) -> u64 {
        self.scheduled_elements
    }

    /// Compiles from scratch — exactly one ILP solve. A cache that calls
    /// this must count it in [`ScheduleCache::solver_invocations`].
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the compile path.
    pub fn solve(&self) -> Result<CompiledPipeline, CompileError> {
        StreamGrid::new(*self.config).compile_spec(self.spec, self.scheduled_elements)
    }

    /// Rebuilds the design around an already-solved `schedule` — zero
    /// ILP solves. `None` when the schedule does not fit this request's
    /// transformed graph (the persisted entry is stale or foreign); the
    /// caller falls back to [`CompileRequest::solve`].
    pub fn rebuild(&self, schedule: streamgrid_optimizer::Schedule) -> Option<CompiledPipeline> {
        StreamGrid::new(*self.config).rebuild_spec(self.spec, self.scheduled_elements, schedule)
    }
}

/// A cache of compiled designs keyed by [`CacheKey`].
///
/// A [`crate::session::Session`] routes every compile through its cache;
/// the cache decides whether to serve a stored design, load a persisted
/// schedule, or pay a fresh ILP solve. Implementations use interior
/// mutability (`&self` receivers) so one cache can be shared across
/// sessions and threads.
///
/// Implementors must uphold two contracts:
///
/// * a request is satisfied either by a design previously produced for
///   the **same spec, config, and chunk size** or by `req.solve()` /
///   `req.rebuild(...)` — never by a design from a different pipeline.
///   The key's fingerprint is a 64-bit hash, so an in-memory hit must
///   additionally compare [`CompileRequest::spec_repr`] (a collision
///   then costs an extra solve, never a wrong design); a persistent hit
///   must validate the loaded entry against a fresh derivation, as
///   [`FileCache`] does;
/// * [`ScheduleCache::solver_invocations`] counts exactly the
///   [`CompileRequest::solve`] calls the cache performed (cache hits and
///   successful rebuilds are free).
pub trait ScheduleCache: fmt::Debug + Send + Sync {
    /// Returns the compiled design for `req`, from cache if possible,
    /// paying at most one ILP solve otherwise.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] when a required fresh compile fails.
    fn get_or_compile(
        &self,
        req: &CompileRequest<'_>,
    ) -> Result<Arc<CompiledPipeline>, CompileError>;

    /// ILP solves this cache has paid (monotone; shared caches report
    /// the total across every session using them).
    fn solver_invocations(&self) -> u64;

    /// Distinct compiled designs resident in memory.
    fn compiled_count(&self) -> usize;
}

/// One resident design plus the full spec identity it was compiled
/// from: hits compare the identity string, so a [`CacheKey`]
/// fingerprint collision is detected (and re-solved) instead of served.
#[derive(Debug, Clone)]
struct CachedDesign {
    spec_repr: Arc<str>,
    compiled: Arc<CompiledPipeline>,
}

impl CachedDesign {
    fn matching(&self, req: &CompileRequest<'_>) -> Option<Arc<CompiledPipeline>> {
        (self.spec_repr.as_ref() == req.spec_repr()).then(|| Arc::clone(&self.compiled))
    }
}

/// A per-key slot map: the outer lock is held only long enough to hand
/// out a slot, and each miss solves under its own slot's lock — so
/// concurrent requests for the *same* key serialize into one solve
/// while requests for *distinct* keys solve concurrently.
type Slot = Arc<Mutex<Option<CachedDesign>>>;

/// One keyed slot plus its recency stamp (bumped on every hand-out, so
/// hits and misses both count as "use" for LRU purposes).
#[derive(Debug, Default)]
struct SlotEntry {
    slot: Slot,
    last_used: AtomicU64,
}

#[derive(Debug, Default)]
struct SlotMap {
    slots: Mutex<HashMap<CacheKey, SlotEntry>>,
    /// Monotone logical clock feeding the recency stamps.
    tick: AtomicU64,
    /// Resident-design bound; `None` grows without limit (the historic
    /// behavior, and what [`FileCache`]'s memo layer keeps).
    capacity: Option<usize>,
}

impl SlotMap {
    fn bounded(capacity: usize) -> Self {
        SlotMap {
            capacity: Some(capacity.max(1)),
            ..SlotMap::default()
        }
    }

    fn slot(&self, key: CacheKey) -> Slot {
        let mut slots = self.slots.lock().expect("slot map lock is panic-free");
        let entry = slots.entry(key).or_default();
        entry
            .last_used
            .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        Arc::clone(&entry.slot)
    }

    /// Evicts least-recently-used designs until at most `capacity`
    /// remain resident. Only considers slots whose lock is free — a
    /// slot mid-compile is untouchable (evicting it would discard a
    /// solve in flight), and `try_lock` keeps this from ever stalling
    /// another key's compile.
    fn enforce_capacity(&self) {
        let Some(cap) = self.capacity else { return };
        let mut slots = self.slots.lock().expect("slot map lock is panic-free");
        loop {
            let mut filled = 0usize;
            let mut victim: Option<(CacheKey, u64)> = None;
            for (key, entry) in slots.iter() {
                let Ok(guard) = entry.slot.try_lock() else {
                    continue;
                };
                if guard.is_none() {
                    continue;
                }
                filled += 1;
                let stamp = entry.last_used.load(Ordering::Relaxed);
                if victim.is_none_or(|(_, s)| stamp < s) {
                    victim = Some((*key, stamp));
                }
            }
            if filled <= cap {
                return;
            }
            let (key, _) = victim.expect("filled > cap implies a candidate");
            slots.remove(&key);
        }
    }

    /// Filled slots (a slot created by an in-flight or failed compile
    /// holds nothing and does not count). Snapshots the slot handles and
    /// releases the outer lock before inspecting them, and only
    /// `try_lock`s each slot — a slot whose compile is in flight is not
    /// filled yet, and counting must never stall another key's compile.
    fn filled(&self) -> usize {
        let handles: Vec<Slot> = {
            let slots = self.slots.lock().expect("slot map lock is panic-free");
            slots.values().map(|e| Arc::clone(&e.slot)).collect()
        };
        handles
            .iter()
            .filter(|s| s.try_lock().is_ok_and(|slot| slot.is_some()))
            .count()
    }
}

/// The default cache: a private in-memory map, giving a session exactly
/// the semantics it had before caches became pluggable — one solve per
/// distinct key over the session's lifetime.
///
/// Misses solve under a per-key lock: concurrent requests for the same
/// key (through [`SharedCache`]) serialize into one solve instead of
/// racing to duplicate it, while distinct keys compile concurrently.
#[derive(Debug, Default)]
pub struct InMemoryCache {
    entries: SlotMap,
    solves: AtomicU64,
}

impl InMemoryCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        InMemoryCache::default()
    }

    /// An empty cache holding at most `capacity` resident designs
    /// (clamped to ≥ 1). Beyond that, the least-recently-*requested*
    /// design is evicted and a later request for its key re-solves —
    /// the bound long-lived servers need so distinct specs × bucket
    /// sizes cannot grow the cache without limit.
    pub fn with_capacity(capacity: usize) -> Self {
        InMemoryCache {
            entries: SlotMap::bounded(capacity),
            solves: AtomicU64::new(0),
        }
    }
}

impl ScheduleCache for InMemoryCache {
    fn get_or_compile(
        &self,
        req: &CompileRequest<'_>,
    ) -> Result<Arc<CompiledPipeline>, CompileError> {
        let slot = self.entries.slot(req.key());
        let mut entry = slot.lock().expect("no panics while compiling");
        if let Some(hit) = entry.as_ref().and_then(|e| e.matching(req)) {
            return Ok(hit);
        }
        // Miss — or a fingerprint collision with a different spec, which
        // we overwrite (correctness over retention; colliding specs
        // alternate solves, they never share a design).
        let compiled = Arc::new(req.solve()?);
        self.solves.fetch_add(1, Ordering::Relaxed);
        *entry = Some(CachedDesign {
            spec_repr: req.spec_repr().into(),
            compiled: Arc::clone(&compiled),
        });
        // Release the slot before enforcing the bound: the slot we just
        // filled must be visible (and evictable) to the LRU sweep.
        drop(entry);
        self.entries.enforce_capacity();
        Ok(compiled)
    }

    fn solver_invocations(&self) -> u64 {
        self.solves.load(Ordering::Relaxed)
    }

    fn compiled_count(&self) -> usize {
        self.entries.filled()
    }
}

/// An [`InMemoryCache`] behind an `Arc`: clone it into any number of
/// sessions (or threads) and they share one schedule pool — N sessions
/// over the same spec/config pay one ILP solve total.
///
/// ```
/// use streamgrid_core::apps::AppDomain;
/// use streamgrid_core::cache::{ScheduleCache, SharedCache};
/// use streamgrid_core::framework::StreamGrid;
/// use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
///
/// let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)));
/// let shared = SharedCache::new();
/// for _ in 0..3 {
///     let mut session = fw
///         .session_builder(AppDomain::Registration.spec())
///         .with_cache(shared.clone())
///         .build();
///     assert!(session.run(4 * 400).unwrap().is_clean());
/// }
/// assert_eq!(shared.solver_invocations(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedCache {
    inner: Arc<InMemoryCache>,
}

impl SharedCache {
    /// An empty shared cache; clones share its storage and accounting.
    pub fn new() -> Self {
        SharedCache::default()
    }

    /// A shared cache bounded to `capacity` resident designs, LRU
    /// evicted (see [`InMemoryCache::with_capacity`]); clones share the
    /// storage, the bound, and the accounting.
    pub fn with_capacity(capacity: usize) -> Self {
        SharedCache {
            inner: Arc::new(InMemoryCache::with_capacity(capacity)),
        }
    }
}

impl ScheduleCache for SharedCache {
    fn get_or_compile(
        &self,
        req: &CompileRequest<'_>,
    ) -> Result<Arc<CompiledPipeline>, CompileError> {
        self.inner.get_or_compile(req)
    }

    fn solver_invocations(&self) -> u64 {
        self.inner.solver_invocations()
    }

    fn compiled_count(&self) -> usize {
        self.inner.compiled_count()
    }
}

/// Format version of [`FileCache`] entries; bump on layout changes so
/// old files fall back to a clean solve instead of misparsing.
const FILE_FORMAT_VERSION: u64 = 1;

/// A schedule cache persisted to a directory, one JSON file per key —
/// the cross-process tier: a bench sweep (or any fresh binary) pointed
/// at a warm directory reuses every solve a previous process paid.
///
/// Each entry stores the final [`streamgrid_optimizer::Schedule`], the
/// derived edge constants, and the [`CompileSummary`], all through the
/// hand-rolled [`streamgrid_optimizer::json`] codec (the vendored serde
/// cannot deserialize). On load the entry is verified against a fresh
/// derivation — edges and summary must match exactly — so a stale,
/// corrupt, or truncated file is silently treated as a miss and
/// re-solved, never an error. Writes are best-effort: an unwritable
/// directory degrades to in-memory caching.
///
/// ```no_run
/// use streamgrid_core::apps::AppDomain;
/// use streamgrid_core::cache::{FileCache, ScheduleCache};
/// use streamgrid_core::framework::StreamGrid;
/// use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
///
/// let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)));
/// // First process: pays the solve and persists it.
/// let mut cold = fw
///     .session_builder(AppDomain::Classification.spec())
///     .with_cache(FileCache::new("schedule-cache"))
///     .build();
/// cold.run(4 * 300).unwrap();
/// // A later process over the same directory pays zero solves.
/// let warm_cache = FileCache::new("schedule-cache");
/// let mut warm = fw
///     .session_builder(AppDomain::Classification.spec())
///     .with_cache(warm_cache)
///     .build();
/// warm.run(4 * 300).unwrap();
/// assert_eq!(warm.solver_invocations(), 0);
/// ```
#[derive(Debug)]
pub struct FileCache {
    dir: PathBuf,
    memory: SlotMap,
    solves: AtomicU64,
}

impl FileCache {
    /// A cache over `dir` (created on first write). Loaded and solved
    /// designs are additionally memoized in memory, so repeated requests
    /// in one process re-read nothing.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FileCache {
            dir: dir.into(),
            memory: SlotMap::default(),
            solves: AtomicU64::new(0),
        }
    }

    /// The directory entries persist under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("schedule-{}.json", key.file_stem()))
    }

    /// Attempts to reconstitute a compiled design from the persisted
    /// entry. Any failure — missing file, malformed JSON, version or key
    /// mismatch, schedule that no longer fits, edge or summary drift —
    /// returns `None` and the caller re-solves.
    fn load(&self, req: &CompileRequest<'_>) -> Option<CompiledPipeline> {
        let text = fs::read_to_string(self.path_for(&req.key())).ok()?;
        let doc = json::parse(&text).ok()?;
        (doc.get("version")?.as_u64()? == FILE_FORMAT_VERSION).then_some(())?;
        (doc.get("chunk_elements")?.as_u64()? == req.key().chunk_elements()).then_some(())?;
        let schedule = json::schedule_from_json(doc.get("schedule")?)?;
        let edges = json::edge_infos_from_json(doc.get("edges")?)?;
        let summary = summary_from_json(doc.get("summary")?)?;
        let compiled = req.rebuild(schedule)?;
        // The persisted derivation must match a fresh one exactly —
        // otherwise the file came from a different spec/config than its
        // name claims (or the formats drifted) and trusting it would
        // poison every downstream report.
        (compiled.edges == edges).then_some(())?;
        (compiled.summary() == summary).then_some(())?;
        Some(compiled)
    }

    /// Persists a freshly solved design, best-effort. The entry is
    /// written to a temp file and renamed into place, so a crash (or a
    /// concurrent process over the same directory) never publishes a
    /// torn entry — readers see either the old complete file or the new
    /// one.
    fn store(&self, req: &CompileRequest<'_>, compiled: &CompiledPipeline) {
        let entry = format!(
            "{{\"version\": {}, \"chunk_elements\": {}, \"summary\": {}, \
             \"schedule\": {}, \"edges\": {}}}\n",
            FILE_FORMAT_VERSION,
            req.key().chunk_elements(),
            summary_to_json(&compiled.summary()),
            json::schedule_to_json(&compiled.schedule),
            json::edge_infos_to_json(&compiled.edges),
        );
        let _ = fs::create_dir_all(&self.dir);
        let path = self.path_for(&req.key());
        // pid distinguishes processes sharing the directory; the counter
        // distinguishes FileCache instances (and writes) within one
        // process — two writers must never interleave on one temp path.
        static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp-{}-{}",
            std::process::id(),
            WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, entry).is_ok() && fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }
}

impl ScheduleCache for FileCache {
    fn get_or_compile(
        &self,
        req: &CompileRequest<'_>,
    ) -> Result<Arc<CompiledPipeline>, CompileError> {
        let slot = self.memory.slot(req.key());
        let mut entry = slot.lock().expect("no panics while compiling");
        if let Some(hit) = entry.as_ref().and_then(|e| e.matching(req)) {
            return Ok(hit);
        }
        if let Some(loaded) = self.load(req) {
            let loaded = Arc::new(loaded);
            *entry = Some(CachedDesign {
                spec_repr: req.spec_repr().into(),
                compiled: Arc::clone(&loaded),
            });
            return Ok(loaded);
        }
        let compiled = Arc::new(req.solve()?);
        self.solves.fetch_add(1, Ordering::Relaxed);
        self.store(req, &compiled);
        *entry = Some(CachedDesign {
            spec_repr: req.spec_repr().into(),
            compiled: Arc::clone(&compiled),
        });
        Ok(compiled)
    }

    fn solver_invocations(&self) -> u64 {
        self.solves.load(Ordering::Relaxed)
    }

    fn compiled_count(&self) -> usize {
        self.memory.filled()
    }
}

fn summary_to_json(summary: &CompileSummary) -> String {
    format!(
        "{{\"onchip_bytes\": {}, \"total_cycles\": {}, \"constraints\": {}, \
         \"solver_nodes\": {}}}",
        summary.onchip_bytes, summary.total_cycles, summary.constraints, summary.solver_nodes,
    )
}

fn summary_from_json(value: &JsonValue) -> Option<CompileSummary> {
    Some(CompileSummary {
        onchip_bytes: value.get("onchip_bytes")?.as_u64()?,
        total_cycles: value.get("total_cycles")?.as_u64()?,
        constraints: value.get("constraints")?.as_usize()?,
        solver_nodes: value.get("solver_nodes")?.as_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppDomain;
    use crate::transform::SplitConfig;

    fn csdt4() -> StreamGridConfig {
        StreamGridConfig::cs_dt(SplitConfig::linear(4, 2))
    }

    fn request<'a>(
        spec: &'a PipelineSpec,
        repr: &'a str,
        config: &'a StreamGridConfig,
        elements: u64,
    ) -> CompileRequest<'a> {
        CompileRequest::new(spec, repr, spec_fingerprint(repr), config, elements)
    }

    #[test]
    fn keys_fold_equal_chunkings_and_split_on_config() {
        let spec = AppDomain::Classification.spec();
        let repr = spec_repr(&spec);
        let csdt = csdt4();
        let base = StreamGridConfig::base();
        // 2397 and 2400 both round up to 600-element chunks.
        assert_eq!(
            request(&spec, &repr, &csdt, 2400).key(),
            request(&spec, &repr, &csdt, 2397).key()
        );
        assert_ne!(
            request(&spec, &repr, &csdt, 2400).key(),
            request(&spec, &repr, &csdt, 2401).key()
        );
        assert_ne!(
            request(&spec, &repr, &csdt, 2400).key(),
            request(&spec, &repr, &base, 2400).key()
        );
    }

    #[test]
    fn keys_distinguish_specs() {
        let cls = AppDomain::Classification.spec();
        let reg = AppDomain::Registration.spec();
        let (cls_repr, reg_repr) = (spec_repr(&cls), spec_repr(&reg));
        let config = csdt4();
        let a = request(&cls, &cls_repr, &config, 1200);
        let b = request(&reg, &reg_repr, &config, 1200);
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key().file_stem(), b.key().file_stem());
    }

    #[test]
    fn file_stem_is_stable_and_filesystem_safe() {
        let spec = AppDomain::Classification.spec();
        let repr = spec_repr(&spec);
        let config = csdt4();
        let stem = request(&spec, &repr, &config, 1200).key().file_stem();
        assert_eq!(stem, request(&spec, &repr, &config, 1200).key().file_stem());
        assert!(stem.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
    }

    #[test]
    fn in_memory_cache_solves_once_per_key() {
        let spec = AppDomain::Classification.spec();
        let repr = spec_repr(&spec);
        let config = csdt4();
        let cache = InMemoryCache::new();
        let a = cache
            .get_or_compile(&request(&spec, &repr, &config, 1200))
            .unwrap();
        let b = cache
            .get_or_compile(&request(&spec, &repr, &config, 1200))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "a hit returns the stored design");
        assert_eq!(cache.solver_invocations(), 1);
        cache
            .get_or_compile(&request(&spec, &repr, &config, 2400))
            .unwrap();
        assert_eq!(cache.solver_invocations(), 2);
        assert_eq!(cache.compiled_count(), 2);
    }

    #[test]
    fn fingerprint_collisions_are_resolved_not_served() {
        // Forge two requests whose keys collide (same fingerprint, same
        // config, same chunk size) but whose specs differ — exactly what
        // a 64-bit hash collision would produce. The cache must detect
        // the identity mismatch and solve for the right spec, never
        // serve the other's design.
        let cls = AppDomain::Classification.spec();
        let reg = AppDomain::Registration.spec();
        let (cls_repr, reg_repr) = (spec_repr(&cls), spec_repr(&reg));
        let config = csdt4();
        let forged = spec_fingerprint(&cls_repr);
        let cls_req = CompileRequest::new(&cls, &cls_repr, forged, &config, 1200);
        let reg_req = CompileRequest::new(&reg, &reg_repr, forged, &config, 1200);
        assert_eq!(cls_req.key(), reg_req.key(), "the forgery must collide");

        let cache = InMemoryCache::new();
        let from_cls = cache.get_or_compile(&cls_req).unwrap();
        let from_reg = cache.get_or_compile(&reg_req).unwrap();
        assert_eq!(cache.solver_invocations(), 2, "the collision costs a solve");
        assert_eq!(from_cls.summary(), cls_req.solve().unwrap().summary());
        assert_eq!(from_reg.summary(), reg_req.solve().unwrap().summary());

        // Same guard on the FileCache memo layer (the persisted entry is
        // additionally rejected by the edge/summary validation).
        let dir =
            std::env::temp_dir().join(format!("streamgrid-cache-collision-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let file_cache = FileCache::new(&dir);
        let from_cls = file_cache.get_or_compile(&cls_req).unwrap();
        let from_reg = file_cache.get_or_compile(&reg_req).unwrap();
        assert_eq!(from_cls.summary(), cls_req.solve().unwrap().summary());
        assert_eq!(from_reg.summary(), reg_req.solve().unwrap().summary());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let spec = AppDomain::Classification.spec();
        let repr = spec_repr(&spec);
        let config = csdt4();
        // Three distinct keys via three chunk sizes; capacity for two.
        let (a, b, c) = (1200u64, 2400, 3600);
        let cache = InMemoryCache::with_capacity(2);
        cache
            .get_or_compile(&request(&spec, &repr, &config, a))
            .unwrap();
        cache
            .get_or_compile(&request(&spec, &repr, &config, b))
            .unwrap();
        assert_eq!(cache.solver_invocations(), 2);
        assert_eq!(cache.compiled_count(), 2);
        // Touch `a` so `b` becomes the LRU, then insert `c` → `b` must
        // be the design evicted.
        cache
            .get_or_compile(&request(&spec, &repr, &config, a))
            .unwrap();
        cache
            .get_or_compile(&request(&spec, &repr, &config, c))
            .unwrap();
        assert_eq!(cache.solver_invocations(), 3);
        assert_eq!(cache.compiled_count(), 2, "capacity holds after insert");
        // `a` survived (hit, no new solve)…
        cache
            .get_or_compile(&request(&spec, &repr, &config, a))
            .unwrap();
        assert_eq!(cache.solver_invocations(), 3, "`a` must still be resident");
        // …and `b` was evicted (miss, one re-solve).
        cache
            .get_or_compile(&request(&spec, &repr, &config, b))
            .unwrap();
        assert_eq!(cache.solver_invocations(), 4, "`b` must have been evicted");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let spec = AppDomain::Classification.spec();
        let repr = spec_repr(&spec);
        let config = csdt4();
        let cache = SharedCache::with_capacity(0);
        cache
            .get_or_compile(&request(&spec, &repr, &config, 1200))
            .unwrap();
        cache
            .get_or_compile(&request(&spec, &repr, &config, 2400))
            .unwrap();
        assert_eq!(cache.compiled_count(), 1, "a zero capacity still holds one");
        // The surviving design is the most recent one.
        cache
            .get_or_compile(&request(&spec, &repr, &config, 2400))
            .unwrap();
        assert_eq!(cache.solver_invocations(), 2);
    }

    #[test]
    fn shared_cache_clones_share_storage() {
        let spec = AppDomain::Classification.spec();
        let config = csdt4();
        let repr = spec_repr(&spec);
        let shared = SharedCache::new();
        let other = shared.clone();
        shared
            .get_or_compile(&request(&spec, &repr, &config, 1200))
            .unwrap();
        other
            .get_or_compile(&request(&spec, &repr, &config, 1200))
            .unwrap();
        assert_eq!(shared.solver_invocations(), 1);
        assert_eq!(other.solver_invocations(), 1);
        assert_eq!(other.compiled_count(), 1);
    }

    #[test]
    fn rebuild_rejects_mismatched_schedules() {
        let spec = AppDomain::Classification.spec();
        let repr = spec_repr(&spec);
        let config = csdt4();
        let req = request(&spec, &repr, &config, 1200);
        let compiled = req.solve().unwrap();
        let mut wrong = compiled.schedule.clone();
        wrong.start_cycles.pop();
        assert!(req.rebuild(wrong).is_none());
        let rebuilt = req.rebuild(compiled.schedule.clone()).unwrap();
        assert_eq!(rebuilt.summary(), compiled.summary());
        assert_eq!(rebuilt.edges, compiled.edges);
    }

    #[test]
    fn summary_json_round_trips() {
        let summary = CompileSummary {
            onchip_bytes: 4096,
            total_cycles: 1 << 55,
            constraints: 42,
            solver_nodes: 7,
        };
        let value = json::parse(&summary_to_json(&summary)).unwrap();
        assert_eq!(summary_from_json(&value), Some(summary));
    }
}
