//! The pipeline registry: names → [`PipelineSpec`]s.
//!
//! Bench binaries, examples, and user scenarios all resolve pipelines
//! the same way: by name out of a [`PipelineRegistry`]. The four Tbl. 2
//! applications come pre-registered
//! ([`PipelineRegistry::with_paper_apps`]); custom specs built through
//! [`crate::pipeline::PipelineBuilder`] register alongside them.

use std::collections::BTreeMap;

use crate::apps::AppDomain;
use crate::pipeline::{CompileError, PipelineSpec};

/// A name-keyed collection of pipeline descriptions.
///
/// # Examples
///
/// ```
/// use streamgrid_core::apps::AppDomain;
/// use streamgrid_core::registry::PipelineRegistry;
///
/// let registry = PipelineRegistry::with_paper_apps();
/// let spec = registry.resolve(AppDomain::Registration.pipeline_name()).unwrap();
/// assert_eq!(spec.name(), "registration");
/// assert_eq!(registry.names().count(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PipelineRegistry {
    specs: BTreeMap<String, PipelineSpec>,
}

impl PipelineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PipelineRegistry::default()
    }

    /// A registry pre-loaded with the four Tbl. 2 application presets,
    /// keyed by [`AppDomain::pipeline_name`].
    pub fn with_paper_apps() -> Self {
        let mut r = PipelineRegistry::new();
        for domain in AppDomain::ALL {
            r.register(domain.spec())
                .expect("paper preset names are unique");
        }
        r
    }

    /// Registers a spec under its own name.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::DuplicateName`] when a pipeline with the
    /// same name is already registered (the existing entry is kept).
    pub fn register(&mut self, spec: PipelineSpec) -> Result<(), CompileError> {
        if self.specs.contains_key(spec.name()) {
            return Err(CompileError::DuplicateName(spec.name().to_owned()));
        }
        self.specs.insert(spec.name().to_owned(), spec);
        Ok(())
    }

    /// Looks a pipeline up by name.
    pub fn get(&self, name: &str) -> Option<&PipelineSpec> {
        self.specs.get(name)
    }

    /// Looks a pipeline up by name, failing with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::UnknownPipeline`] when the name is not
    /// registered.
    pub fn resolve(&self, name: &str) -> Result<&PipelineSpec, CompileError> {
        self.get(name)
            .ok_or_else(|| CompileError::UnknownPipeline(name.to_owned()))
    }

    /// Registered names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.specs.keys().map(String::as_str)
    }

    /// Registered specs in name order.
    pub fn specs(&self) -> impl Iterator<Item = &PipelineSpec> {
        self.specs.values()
    }

    /// Number of registered pipelines.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamgrid_dataflow::Shape;

    fn tiny(name: &str) -> PipelineSpec {
        let mut b = PipelineSpec::builder(name);
        let src = b.source("src", Shape::new(1, 3), 1);
        let sink = b.sink("sink", Shape::new(1, 3), 1);
        b.connect(src, sink);
        b.build().unwrap()
    }

    #[test]
    fn paper_apps_preregistered() {
        let r = PipelineRegistry::with_paper_apps();
        assert_eq!(r.len(), 4);
        for domain in AppDomain::ALL {
            let spec = r.resolve(domain.pipeline_name()).unwrap();
            assert!(!spec.globals().is_empty(), "{domain:?}");
        }
    }

    #[test]
    fn duplicate_names_rejected_and_original_kept() {
        let mut r = PipelineRegistry::with_paper_apps();
        let stages_before = r.get("classification").unwrap().graph().node_count();
        let err = r.register(tiny("classification")).unwrap_err();
        assert_eq!(err, CompileError::DuplicateName("classification".into()));
        assert_eq!(
            r.get("classification").unwrap().graph().node_count(),
            stages_before,
            "failed registration must not clobber the existing entry"
        );
    }

    #[test]
    fn custom_specs_register_alongside_presets() {
        let mut r = PipelineRegistry::with_paper_apps();
        r.register(tiny("user_pipeline")).unwrap();
        assert_eq!(r.len(), 5);
        assert!(r.names().any(|n| n == "user_pipeline"));
        assert!(matches!(
            r.resolve("missing"),
            Err(CompileError::UnknownPipeline(_))
        ));
    }
}
