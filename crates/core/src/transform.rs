//! The algorithm transformation layer (Sec. 4): compulsory splitting and
//! deterministic termination as configuration applied to a pipeline.

use serde::{Deserialize, Serialize};
use streamgrid_dataflow::{DataflowGraph, OpKind};
use streamgrid_pointcloud::{GridDims, WindowSpec};

/// Compulsory-splitting configuration (Sec. 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitConfig {
    /// Uniform chunk grid applied to the input cloud ("When to Split":
    /// one partition shared by every global op in the pipeline).
    pub dims: GridDims,
    /// Chunk window read by global-dependent operations (Fig. 7).
    pub window: WindowSpec,
}

impl SplitConfig {
    /// Number of chunks in the partition.
    pub fn chunk_count(&self) -> u64 {
        self.dims.chunk_count() as u64
    }

    /// Chunks each global op retains on-chip.
    pub fn window_chunks(&self) -> u32 {
        self.window.chunks_per_window() as u32
    }

    /// The paper's classification/segmentation setting: 3×3×1 chunks
    /// with a 2×2 kernel ("equivalent to partitioning into 4 chunks").
    pub fn paper_cls() -> Self {
        SplitConfig {
            dims: GridDims::new(3, 3, 1),
            window: WindowSpec::new((2, 2, 1), (1, 1, 1)),
        }
    }

    /// A 1-D split into `n` chunks read through a `w`-chunk sliding
    /// window (the LiDAR/serial setting).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `w == 0`.
    pub fn linear(n: u32, w: u32) -> Self {
        SplitConfig {
            dims: GridDims::new(n, 1, 1),
            window: WindowSpec::new((w.min(n), 1, 1), (1, 1, 1)),
        }
    }
}

/// Deterministic-termination configuration (Sec. 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TerminationConfig {
    /// Deadline as a fraction of the profiled full-traversal step count
    /// (the paper evaluates 1, 1/2, 1/4, 1/8, 1/16; default 1/4).
    pub deadline_fraction: f64,
}

impl Default for TerminationConfig {
    fn default() -> Self {
        TerminationConfig {
            deadline_fraction: 0.25,
        }
    }
}

/// The full StreamGrid transform: which of the paper's techniques are
/// active. This maps one-to-one onto the evaluation variants:
/// `Base` = neither, `CS` = splitting only, `CS+DT` = both.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StreamGridConfig {
    /// Compulsory splitting; `None` = unsplit pipeline.
    pub splitting: Option<SplitConfig>,
    /// Deterministic termination; `None` = canonical (input-dependent)
    /// operations.
    pub termination: Option<TerminationConfig>,
}

impl StreamGridConfig {
    /// The Base variant: no transform.
    pub fn base() -> Self {
        StreamGridConfig::default()
    }

    /// The CS variant.
    pub fn cs(split: SplitConfig) -> Self {
        StreamGridConfig {
            splitting: Some(split),
            termination: None,
        }
    }

    /// The full CS+DT variant with the paper's defaults.
    pub fn cs_dt(split: SplitConfig) -> Self {
        StreamGridConfig {
            splitting: Some(split),
            termination: Some(TerminationConfig::default()),
        }
    }

    /// Chunks the pipeline streams per cloud (1 when unsplit).
    pub fn chunk_count(&self) -> u64 {
        self.splitting.map(|s| s.chunk_count()).unwrap_or(1)
    }

    /// Applies the transform to a dataflow graph: global ops get their
    /// chunk-window retention set (Fig. 7). The graph itself stays
    /// structurally identical — CS/DT change communication volumes and
    /// determinism, not operator semantics (Sec. 4).
    pub fn apply(&self, graph: &mut DataflowGraph) {
        let window = self.splitting.map(|s| s.window_chunks()).unwrap_or(1);
        let globals: Vec<_> = graph
            .nodes()
            .filter(|(_, n)| matches!(n.kind, OpKind::GlobalOp))
            .map(|(id, _)| id)
            .collect();
        for id in globals {
            graph.set_window_chunks(id, window);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamgrid_dataflow::Shape;

    #[test]
    fn paper_cls_is_four_effective_chunks() {
        let s = SplitConfig::paper_cls();
        assert_eq!(s.chunk_count(), 9);
        assert_eq!(s.window_chunks(), 4);
    }

    #[test]
    fn linear_split_clamps_window() {
        let s = SplitConfig::linear(4, 8);
        assert_eq!(s.window_chunks(), 4);
    }

    #[test]
    fn variant_constructors() {
        assert_eq!(StreamGridConfig::base().chunk_count(), 1);
        let cs = StreamGridConfig::cs(SplitConfig::linear(4, 2));
        assert_eq!(cs.chunk_count(), 4);
        assert!(cs.termination.is_none());
        let csdt = StreamGridConfig::cs_dt(SplitConfig::linear(4, 2));
        assert!(csdt.termination.is_some());
    }

    #[test]
    fn apply_sets_window_on_global_ops_only() {
        let mut g = DataflowGraph::new();
        let src = g.source("src", Shape::new(1, 3), 1);
        let knn = g.global_op("knn", Shape::new(1, 3), 1, Shape::new(1, 3), 1, (1, 1), 4);
        let sink = g.sink("sink", Shape::new(1, 3), 1);
        g.connect(src, knn);
        g.connect(knn, sink);
        StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)).apply(&mut g);
        assert_eq!(g.node(knn).window_chunks, 2);
        assert_eq!(g.node(src).window_chunks, 1);
    }
}
