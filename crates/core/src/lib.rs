//! StreamGrid: streaming point-cloud analytics via compulsory splitting
//! and deterministic termination.
//!
//! This crate is the paper's primary contribution assembled over the
//! workspace's substrates (Fig. 1's flow):
//!
//! 1. **Algorithm transformation** ([`transform`]) — compulsory
//!    splitting (Sec. 4.1) and deterministic termination (Sec. 4.2) as
//!    configuration over a pipeline;
//! 2. **Pipeline description** ([`pipeline`]) — the open Sec. 6
//!    programming interface: a typed [`pipeline::PipelineBuilder`]
//!    produces validated [`pipeline::PipelineSpec`]s, a
//!    [`registry::PipelineRegistry`] names them, and the Tbl. 2
//!    applications ([`apps`]) are presets expressed through the same
//!    builder;
//! 3. **Line-buffer optimization** — delegated to
//!    `streamgrid-optimizer` (Sec. 5's ILP with constraint pruning and
//!    multi-chunk bubbles);
//! 4. **Execution** ([`framework`], [`session`], [`source`], [`cache`])
//!    — the compiled design runs on the cycle-level simulator of
//!    `streamgrid-sim`; a [`session::Session`] routes every compile
//!    through a pluggable [`cache::ScheduleCache`] (private, shared
//!    across sessions, or persisted across processes) so repeated
//!    executions amortize the ILP solve, and
//!    [`session::Session::stream`] pulls [`source::Frame`]s from a
//!    [`source::FrameSource`] (synthetic, replayed, or dataset-backed)
//!    with size-bucketed compile reuse ([`source::SizeBucketing`]) and
//!    optional multi-worker overlapped execution
//!    ([`source::StreamOptions::workers`]).
//!
//! The algorithmic counterparts (how CS/DT change *results*, not just
//! buffers) live in the application substrates: `streamgrid-nn` for
//! PointNet++ (+ integrated co-training, Sec. 4.3),
//! `streamgrid-registration` for A-LOAM, `streamgrid-splat` for 3DGS.
//!
//! # Examples
//!
//! ```
//! use streamgrid_core::apps::AppDomain;
//! use streamgrid_core::framework::StreamGrid;
//! use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
//!
//! // Base vs CS+DT on the classification pipeline: the headline Fig. 17
//! // buffer reduction, end to end.
//! let elements = 9 * 600;
//! let base = StreamGrid::new(StreamGridConfig::base())
//!     .compile(AppDomain::Classification, elements)
//!     .unwrap();
//! let csdt = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::paper_cls()))
//!     .compile(AppDomain::Classification, elements)
//!     .unwrap();
//! assert!(csdt.summary().onchip_bytes < base.summary().onchip_bytes);
//! ```

pub mod apps;
pub mod cache;
pub mod framework;
pub mod pipeline;
pub mod registry;
pub mod session;
pub mod source;
pub mod transform;

pub use apps::{table2, AppDomain, AppSpec};
pub use cache::{CacheKey, CompileRequest, FileCache, InMemoryCache, ScheduleCache, SharedCache};
pub use framework::{
    CompileSummary, CompiledPipeline, ExecMode, ExecuteOptions, ExecutionReport, LintSummary,
    StreamGrid,
};
pub use pipeline::{CompileError, PipelineBuilder, PipelineSpec, StageId};
pub use registry::PipelineRegistry;
pub use session::{Session, SessionBuilder};
pub use source::{
    nearest_rank, DatasetSource, Frame, FrameReport, FrameSource, FrameStats, ReplaySource,
    SizeBucketing, StreamOptions, StreamReport, SyntheticSource,
};
pub use transform::{SplitConfig, StreamGridConfig, TerminationConfig};
