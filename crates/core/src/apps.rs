//! The Tbl. 2 application registry and per-app dataflow graphs.
//!
//! Each of the paper's four domains gets (a) a registry entry carrying
//! the table's columns and (b) a dataflow-graph builder expressed in the
//! Sec. 6 interface. The graphs are what the line-buffer optimizer and
//! the cycle-level simulator consume for Figs. 17–20.

use serde::{Deserialize, Serialize};
use streamgrid_dataflow::{DataflowGraph, NodeId, Shape};

/// The four application domains of Tbl. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppDomain {
    /// PointNet++(c) on ModelNet10/40-like data.
    Classification,
    /// PointNet++(s) on ShapeNet-like data.
    Segmentation,
    /// A-LOAM on KITTI-like sequences.
    Registration,
    /// 3DGS on Tanks&Temples/DeepBlending-like scenes.
    NeuralRendering,
}

impl AppDomain {
    /// All domains in Tbl. 2 order.
    pub const ALL: [AppDomain; 4] = [
        AppDomain::Classification,
        AppDomain::Segmentation,
        AppDomain::Registration,
        AppDomain::NeuralRendering,
    ];

    /// Datapath intensity (MACs per produced element) of the domain's
    /// pipeline — the PointNet++ MLPs dominate the DNN domains, while
    /// registration and splatting are traffic-bound. Feeds
    /// `EngineConfig::macs_per_element` (the Fig. 17b energy knob).
    pub fn macs_per_element(self) -> f64 {
        match self {
            AppDomain::Classification | AppDomain::Segmentation => 2048.0,
            AppDomain::Registration => 256.0,
            AppDomain::NeuralRendering => 512.0,
        }
    }
}

/// One row of Tbl. 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AppSpec {
    /// Domain.
    pub domain: AppDomain,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Evaluation datasets (synthetic stand-ins here; see DESIGN.md).
    pub datasets: &'static [&'static str],
    /// Hardware baselines compared in Fig. 18.
    pub hardware_baselines: &'static [&'static str],
    /// The pipeline's global-dependent operation.
    pub global_dependency: &'static str,
    /// Accuracy metric.
    pub metric: &'static str,
}

/// The benchmark registry (Tbl. 2).
pub fn table2() -> Vec<AppSpec> {
    vec![
        AppSpec {
            domain: AppDomain::Classification,
            algorithm: "PointNet++ (c)",
            datasets: &["ModelNet10-like", "ModelNet40-like"],
            hardware_baselines: &["PointAcc", "Mesorasi"],
            global_dependency: "Range Search",
            metric: "overall accuracy",
        },
        AppSpec {
            domain: AppDomain::Segmentation,
            algorithm: "PointNet++ (s)",
            datasets: &["ShapeNet-like"],
            hardware_baselines: &["PointAcc", "Mesorasi"],
            global_dependency: "Range Search",
            metric: "mIoU",
        },
        AppSpec {
            domain: AppDomain::Registration,
            algorithm: "A-LOAM",
            datasets: &["KITTI-like"],
            hardware_baselines: &["QuickNN", "Tigris"],
            global_dependency: "kNN Search",
            metric: "translation/rotation error",
        },
        AppSpec {
            domain: AppDomain::NeuralRendering,
            algorithm: "3DGS",
            datasets: &["Tanks&Temple-like", "DeepBlending-like"],
            hardware_baselines: &["GScore"],
            global_dependency: "Sorting",
            metric: "PSNR",
        },
    ]
}

/// Builds the domain's pipeline as a dataflow graph (Sec. 6 interface).
///
/// Returned alongside the graph are the ids of its global-dependent
/// stages (for transform application and inspection).
pub fn dataflow_graph(domain: AppDomain) -> (DataflowGraph, Vec<NodeId>) {
    let mut g = DataflowGraph::new();
    match domain {
        // PointNet++(c): scale → range search → grouped MLP → max-pool
        // reduction → head MLP. (The Fig. 8 pipeline with its S/R/M
        // stages, plus the classification tail.)
        AppDomain::Classification => {
            let src = g.source("reader", Shape::new(1, 3), 1);
            let scale = g.map("scale", Shape::new(1, 3), Shape::new(1, 3), 2);
            // Range search: reads one point per cycle, emits a group of
            // 8 neighbor features every 8 cycles.
            let rs = g.global_op(
                "range_search",
                Shape::new(1, 3),
                1,
                Shape::new(8, 3),
                8,
                (1, 1),
                8,
            );
            let mlp = g.map("group_mlp", Shape::new(1, 3), Shape::new(1, 16), 4);
            // Max-pool over each 8-neighbor group.
            let pool = g.reduction("max_pool", Shape::new(1, 16), Shape::new(1, 16), 2, 8);
            let head = g.map("head_mlp", Shape::new(1, 16), Shape::new(1, 4), 6);
            let sink = g.sink("logits", Shape::new(1, 4), 1);
            g.connect(src, scale);
            g.connect(scale, rs);
            g.connect(rs, mlp);
            g.connect(mlp, pool);
            g.connect(pool, head);
            g.connect(head, sink);
            (g, vec![rs])
        }
        // PointNet++(s): like (c) but with a feature-propagation stage
        // that interpolates back to full resolution (stencil over the
        // centroid stream) instead of a classification head.
        AppDomain::Segmentation => {
            let src = g.source("reader", Shape::new(1, 3), 1);
            let scale = g.map("scale", Shape::new(1, 3), Shape::new(1, 3), 2);
            let rs = g.global_op(
                "range_search",
                Shape::new(1, 3),
                1,
                Shape::new(8, 3),
                8,
                (1, 1),
                8,
            );
            let mlp = g.map("group_mlp", Shape::new(1, 3), Shape::new(1, 16), 4);
            let pool = g.reduction("max_pool", Shape::new(1, 16), Shape::new(1, 16), 2, 8);
            let fp = g.stencil(
                "feature_prop",
                Shape::new(1, 16),
                Shape::new(8, 8),
                4,
                (3, 1),
            );
            let head = g.map("point_head", Shape::new(1, 8), Shape::new(1, 4), 4);
            let sink = g.sink("labels", Shape::new(1, 4), 1);
            g.connect(src, scale);
            g.connect(scale, rs);
            g.connect(rs, mlp);
            g.connect(mlp, pool);
            g.connect(pool, fp);
            g.connect(fp, head);
            g.connect(head, sink);
            (g, vec![rs])
        }
        // A-LOAM: curvature stencil → feature selection (reduction) →
        // kNN correspondence search (global) → Gauss-Newton accumulation
        // (reduction).
        AppDomain::Registration => {
            let src = g.source("scan_reader", Shape::new(1, 3), 1);
            // 1×11 curvature stencil (±5 neighbors, Fig. 2a).
            let curv = g.stencil("curvature", Shape::new(1, 3), Shape::new(1, 4), 4, (11, 1));
            // Keep the best 1 of every 8 candidates.
            let select = g.reduction("feature_select", Shape::new(1, 4), Shape::new(1, 4), 2, 8);
            let knn = g.global_op(
                "knn_search",
                Shape::new(1, 4),
                1,
                Shape::new(2, 4),
                4,
                (1, 1),
                8,
            );
            let residual = g.map("residual", Shape::new(1, 4), Shape::new(1, 8), 4);
            // Normal-equation accumulation: one 6×6 system per 64
            // correspondences.
            let gn = g.reduction("gauss_newton", Shape::new(1, 8), Shape::new(6, 8), 8, 64);
            let sink = g.sink("pose", Shape::new(6, 8), 1);
            g.connect(src, curv);
            g.connect(curv, select);
            g.connect(select, knn);
            g.connect(knn, residual);
            g.connect(residual, gn);
            g.connect(gn, sink);
            (g, vec![knn])
        }
        // 3DGS: projection → depth sort (global) → tile raster.
        AppDomain::NeuralRendering => {
            let src = g.source("gaussian_reader", Shape::new(1, 8), 1);
            let project = g.map("project", Shape::new(1, 8), Shape::new(1, 6), 4);
            let sort = g.global_op(
                "depth_sort",
                Shape::new(1, 6),
                1,
                Shape::new(1, 6),
                1,
                (1, 1),
                16,
            );
            // Rasterize: each sorted splat touches a 2×1 tile window.
            let raster = g.stencil("rasterize", Shape::new(1, 6), Shape::new(1, 3), 8, (2, 1));
            let sink = g.sink("framebuffer", Shape::new(1, 3), 1);
            g.connect(src, project);
            g.connect(project, sort);
            g.connect(sort, raster);
            g.connect(raster, sink);
            (g, vec![sort])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_four_domains() {
        let t = table2();
        assert_eq!(t.len(), 4);
        for (spec, domain) in t.iter().zip(AppDomain::ALL) {
            assert_eq!(spec.domain, domain);
        }
    }

    #[test]
    fn all_graphs_validate() {
        for domain in AppDomain::ALL {
            let (g, globals) = dataflow_graph(domain);
            assert!(g.validate().is_ok(), "{domain:?} graph invalid");
            assert!(!globals.is_empty(), "{domain:?} must have a global op");
            for id in globals {
                assert!(g.node(id).kind.is_global());
            }
        }
    }

    #[test]
    fn volumes_flow_through_every_graph() {
        for domain in AppDomain::ALL {
            let (g, _) = dataflow_graph(domain);
            let w = g.volumes(3 * 1024);
            assert!(w.iter().all(|&v| v > 0), "{domain:?}: {w:?}");
        }
    }

    #[test]
    fn registry_matches_paper_baselines() {
        let t = table2();
        assert!(t[0].hardware_baselines.contains(&"PointAcc"));
        assert!(t[2].hardware_baselines.contains(&"QuickNN"));
        assert_eq!(t[3].hardware_baselines, &["GScore"]);
        assert_eq!(t[2].global_dependency, "kNN Search");
    }
}
