//! The Tbl. 2 application registry and per-app pipeline presets.
//!
//! Each of the paper's four domains gets (a) a registry entry carrying
//! the table's columns and (b) a [`PipelineSpec`] preset expressed
//! through the [`crate::pipeline::PipelineBuilder`] over the Sec. 6
//! interface. [`AppDomain`] is a thin alias layer over those presets:
//! [`AppDomain::spec`] resolves the domain to its builder-made spec, and
//! [`crate::registry::PipelineRegistry::with_paper_apps`] pre-registers
//! all four under [`AppDomain::pipeline_name`].

use serde::{Deserialize, Serialize};
use streamgrid_dataflow::Shape;

use crate::pipeline::PipelineSpec;

/// The four application domains of Tbl. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppDomain {
    /// PointNet++(c) on ModelNet10/40-like data.
    Classification,
    /// PointNet++(s) on ShapeNet-like data.
    Segmentation,
    /// A-LOAM on KITTI-like sequences.
    Registration,
    /// 3DGS on Tanks&Temples/DeepBlending-like scenes.
    NeuralRendering,
}

impl AppDomain {
    /// All domains in Tbl. 2 order.
    pub const ALL: [AppDomain; 4] = [
        AppDomain::Classification,
        AppDomain::Segmentation,
        AppDomain::Registration,
        AppDomain::NeuralRendering,
    ];

    /// Datapath intensity (MACs per produced element) of the domain's
    /// pipeline — the PointNet++ MLPs dominate the DNN domains, while
    /// registration and splatting are traffic-bound. Feeds
    /// `EngineConfig::macs_per_element` (the Fig. 17b energy knob).
    pub fn macs_per_element(self) -> f64 {
        match self {
            AppDomain::Classification | AppDomain::Segmentation => 2048.0,
            AppDomain::Registration => 256.0,
            AppDomain::NeuralRendering => 512.0,
        }
    }

    /// The domain's registry key (`PipelineRegistry::with_paper_apps`
    /// registers every preset under this name).
    pub fn pipeline_name(self) -> &'static str {
        match self {
            AppDomain::Classification => "classification",
            AppDomain::Segmentation => "segmentation",
            AppDomain::Registration => "registration",
            AppDomain::NeuralRendering => "neural_rendering",
        }
    }

    /// The domain's pipeline preset (thin alias over
    /// [`PipelineSpec::classification`] and friends).
    pub fn spec(self) -> PipelineSpec {
        match self {
            AppDomain::Classification => PipelineSpec::classification(),
            AppDomain::Segmentation => PipelineSpec::segmentation(),
            AppDomain::Registration => PipelineSpec::registration(),
            AppDomain::NeuralRendering => PipelineSpec::neural_rendering(),
        }
    }
}

/// One row of Tbl. 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AppSpec {
    /// Domain.
    pub domain: AppDomain,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Evaluation datasets (synthetic stand-ins here; see DESIGN.md).
    pub datasets: &'static [&'static str],
    /// Hardware baselines compared in Fig. 18.
    pub hardware_baselines: &'static [&'static str],
    /// The pipeline's global-dependent operation.
    pub global_dependency: &'static str,
    /// Accuracy metric.
    pub metric: &'static str,
}

/// The benchmark registry (Tbl. 2).
pub fn table2() -> Vec<AppSpec> {
    vec![
        AppSpec {
            domain: AppDomain::Classification,
            algorithm: "PointNet++ (c)",
            datasets: &["ModelNet10-like", "ModelNet40-like"],
            hardware_baselines: &["PointAcc", "Mesorasi"],
            global_dependency: "Range Search",
            metric: "overall accuracy",
        },
        AppSpec {
            domain: AppDomain::Segmentation,
            algorithm: "PointNet++ (s)",
            datasets: &["ShapeNet-like"],
            hardware_baselines: &["PointAcc", "Mesorasi"],
            global_dependency: "Range Search",
            metric: "mIoU",
        },
        AppSpec {
            domain: AppDomain::Registration,
            algorithm: "A-LOAM",
            datasets: &["KITTI-like"],
            hardware_baselines: &["QuickNN", "Tigris"],
            global_dependency: "kNN Search",
            metric: "translation/rotation error",
        },
        AppSpec {
            domain: AppDomain::NeuralRendering,
            algorithm: "3DGS",
            datasets: &["Tanks&Temple-like", "DeepBlending-like"],
            hardware_baselines: &["GScore"],
            global_dependency: "Sorting",
            metric: "PSNR",
        },
    ]
}

/// The Tbl. 2 presets, expressed through the builder. Stage parameters
/// are unchanged from the original hand-wired graphs; the regression
/// test in `tests/pipeline_api.rs` pins the compiled summaries against
/// the legacy construction byte for byte.
impl PipelineSpec {
    /// PointNet++(c): scale → range search → grouped MLP → max-pool
    /// reduction → head MLP. (The Fig. 8 pipeline with its S/R/M stages,
    /// plus the classification tail.)
    pub fn classification() -> PipelineSpec {
        let mut b = PipelineSpec::builder(AppDomain::Classification.pipeline_name());
        b.macs_per_element(AppDomain::Classification.macs_per_element());
        let src = b.source("reader", Shape::new(1, 3), 1);
        let scale = b.map("scale", Shape::new(1, 3), Shape::new(1, 3), 2);
        // Range search: reads one point per cycle, emits a group of 8
        // neighbor features every 8 cycles.
        let rs = b.global_op(
            "range_search",
            Shape::new(1, 3),
            1,
            Shape::new(8, 3),
            8,
            (1, 1),
            8,
        );
        let mlp = b.map("group_mlp", Shape::new(1, 3), Shape::new(1, 16), 4);
        // Max-pool over each 8-neighbor group.
        let pool = b.reduction("max_pool", Shape::new(1, 16), Shape::new(1, 16), 2, 8);
        let head = b.map("head_mlp", Shape::new(1, 16), Shape::new(1, 4), 6);
        let sink = b.sink("logits", Shape::new(1, 4), 1);
        b.connect(src, scale)
            .connect(scale, rs)
            .connect(rs, mlp)
            .connect(mlp, pool)
            .connect(pool, head)
            .connect(head, sink);
        b.build().expect("the classification preset is valid")
    }

    /// PointNet++(s): like [`PipelineSpec::classification`] but with a
    /// feature-propagation stage that interpolates back to full
    /// resolution (stencil over the centroid stream) instead of a
    /// classification head.
    pub fn segmentation() -> PipelineSpec {
        let mut b = PipelineSpec::builder(AppDomain::Segmentation.pipeline_name());
        b.macs_per_element(AppDomain::Segmentation.macs_per_element());
        let src = b.source("reader", Shape::new(1, 3), 1);
        let scale = b.map("scale", Shape::new(1, 3), Shape::new(1, 3), 2);
        let rs = b.global_op(
            "range_search",
            Shape::new(1, 3),
            1,
            Shape::new(8, 3),
            8,
            (1, 1),
            8,
        );
        let mlp = b.map("group_mlp", Shape::new(1, 3), Shape::new(1, 16), 4);
        let pool = b.reduction("max_pool", Shape::new(1, 16), Shape::new(1, 16), 2, 8);
        let fp = b.stencil(
            "feature_prop",
            Shape::new(1, 16),
            Shape::new(8, 8),
            4,
            (3, 1),
        );
        let head = b.map("point_head", Shape::new(1, 8), Shape::new(1, 4), 4);
        let sink = b.sink("labels", Shape::new(1, 4), 1);
        b.connect(src, scale)
            .connect(scale, rs)
            .connect(rs, mlp)
            .connect(mlp, pool)
            .connect(pool, fp)
            .connect(fp, head)
            .connect(head, sink);
        b.build().expect("the segmentation preset is valid")
    }

    /// A-LOAM: curvature stencil → feature selection (reduction) → kNN
    /// correspondence search (global) → Gauss-Newton accumulation
    /// (reduction).
    pub fn registration() -> PipelineSpec {
        let mut b = PipelineSpec::builder(AppDomain::Registration.pipeline_name());
        b.macs_per_element(AppDomain::Registration.macs_per_element());
        let src = b.source("scan_reader", Shape::new(1, 3), 1);
        // 1×11 curvature stencil (±5 neighbors, Fig. 2a).
        let curv = b.stencil("curvature", Shape::new(1, 3), Shape::new(1, 4), 4, (11, 1));
        // Keep the best 1 of every 8 candidates.
        let select = b.reduction("feature_select", Shape::new(1, 4), Shape::new(1, 4), 2, 8);
        let knn = b.global_op(
            "knn_search",
            Shape::new(1, 4),
            1,
            Shape::new(2, 4),
            4,
            (1, 1),
            8,
        );
        let residual = b.map("residual", Shape::new(1, 4), Shape::new(1, 8), 4);
        // Normal-equation accumulation: one 6×6 system per 64
        // correspondences.
        let gn = b.reduction("gauss_newton", Shape::new(1, 8), Shape::new(6, 8), 8, 64);
        let sink = b.sink("pose", Shape::new(6, 8), 1);
        b.connect(src, curv)
            .connect(curv, select)
            .connect(select, knn)
            .connect(knn, residual)
            .connect(residual, gn)
            .connect(gn, sink);
        b.build().expect("the registration preset is valid")
    }

    /// 3DGS: projection → depth sort (global) → tile raster.
    pub fn neural_rendering() -> PipelineSpec {
        let mut b = PipelineSpec::builder(AppDomain::NeuralRendering.pipeline_name());
        b.macs_per_element(AppDomain::NeuralRendering.macs_per_element());
        let src = b.source("gaussian_reader", Shape::new(1, 8), 1);
        let project = b.map("project", Shape::new(1, 8), Shape::new(1, 6), 4);
        let sort = b.global_op(
            "depth_sort",
            Shape::new(1, 6),
            1,
            Shape::new(1, 6),
            1,
            (1, 1),
            16,
        );
        // Rasterize: each sorted splat touches a 2×1 tile window.
        let raster = b.stencil("rasterize", Shape::new(1, 6), Shape::new(1, 3), 8, (2, 1));
        let sink = b.sink("framebuffer", Shape::new(1, 3), 1);
        b.connect(src, project)
            .connect(project, sort)
            .connect(sort, raster)
            .connect(raster, sink);
        b.build().expect("the neural-rendering preset is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_four_domains() {
        let t = table2();
        assert_eq!(t.len(), 4);
        for (spec, domain) in t.iter().zip(AppDomain::ALL) {
            assert_eq!(spec.domain, domain);
        }
    }

    #[test]
    fn all_presets_validate() {
        for domain in AppDomain::ALL {
            let spec = domain.spec();
            assert_eq!(spec.name(), domain.pipeline_name());
            assert!(spec.graph().validate().is_ok(), "{domain:?} graph invalid");
            assert!(
                !spec.globals().is_empty(),
                "{domain:?} must have a global op"
            );
            for &id in spec.globals() {
                assert!(spec.graph().node(id).kind.is_global());
            }
            assert_eq!(spec.macs_per_element(), domain.macs_per_element());
        }
    }

    #[test]
    fn volumes_flow_through_every_preset() {
        for domain in AppDomain::ALL {
            let spec = domain.spec();
            let w = spec.graph().volumes(3 * 1024);
            assert!(w.iter().all(|&v| v > 0), "{domain:?}: {w:?}");
        }
    }

    #[test]
    fn registry_matches_paper_baselines() {
        let t = table2();
        assert!(t[0].hardware_baselines.contains(&"PointAcc"));
        assert!(t[2].hardware_baselines.contains(&"QuickNN"));
        assert_eq!(t[3].hardware_baselines, &["GScore"]);
        assert_eq!(t[2].global_dependency, "kNN Search");
    }
}
