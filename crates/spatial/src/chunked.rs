//! Chunked (compulsorily-split) neighbor search.
//!
//! [`ChunkedIndex`] partitions a cloud over a [`ChunkGrid`] and builds a
//! kd-tree per chunk. Two search modes expose the paper's spectrum:
//!
//! * [`ChunkedIndex::knn_adaptive`] — exact search that opens chunks
//!   nearest-first and stops when no unopened chunk can improve the
//!   result. Its `chunks_accessed` counter is the Fig. 6 measurement
//!   ("even for 256 neighbors only ~16 of 64 chunks are touched").
//! * [`ChunkedIndex::knn_in_window`] — compulsory splitting: only the
//!   chunks of a fixed window are searched (Fig. 7), optionally with a
//!   deterministic-termination step budget per chunk. This is what the
//!   streaming pipeline executes.

use streamgrid_pointcloud::{ChunkGrid, ChunkId, ChunkPartition, GridDims, Point3, WindowSpec};

use crate::kdtree::{KdTree, StepBudget};
use crate::neighbor::{KnnHeap, Neighbor};

/// Statistics of one chunked query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkSearchStats {
    /// Chunks whose trees were searched.
    pub chunks_accessed: usize,
    /// Total kd-tree node visits across chunks.
    pub steps: u64,
    /// `false` if any per-chunk traversal hit its deterministic-
    /// termination deadline.
    pub completed: bool,
}

#[derive(Debug, Clone)]
struct Chunk {
    /// Chunk-local copies of the points (the line-buffer resident data).
    points: Vec<Point3>,
    /// Map from chunk-local index to global point index.
    global: Vec<u32>,
    tree: KdTree,
}

/// A chunk-partitioned search index.
#[derive(Debug, Clone)]
pub struct ChunkedIndex {
    grid: ChunkGrid,
    chunks: Vec<Chunk>,
}

impl ChunkedIndex {
    /// Partitions `points` over `grid` and builds one kd-tree per chunk.
    pub fn build(points: &[Point3], grid: ChunkGrid) -> Self {
        let partition = grid.partition(points);
        let chunks = Self::chunks_from_partition(points, &partition);
        ChunkedIndex { grid, chunks }
    }

    /// Builds from an existing partition (e.g. a serial LiDAR split).
    /// `grid` must describe the same chunk count.
    ///
    /// # Panics
    ///
    /// Panics if `partition.chunk_count() != grid.dims().chunk_count()`.
    pub fn from_partition(points: &[Point3], grid: ChunkGrid, partition: &ChunkPartition) -> Self {
        assert_eq!(
            partition.chunk_count(),
            grid.dims().chunk_count(),
            "partition does not match grid"
        );
        let chunks = Self::chunks_from_partition(points, partition);
        ChunkedIndex { grid, chunks }
    }

    fn chunks_from_partition(points: &[Point3], partition: &ChunkPartition) -> Vec<Chunk> {
        partition
            .iter()
            .map(|(_, indices)| {
                let local: Vec<Point3> = indices.iter().map(|&i| points[i as usize]).collect();
                let tree = KdTree::build(&local);
                Chunk {
                    points: local,
                    global: indices.to_vec(),
                    tree,
                }
            })
            .collect()
    }

    /// The grid the index was built over.
    pub fn grid(&self) -> &ChunkGrid {
        &self.grid
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Points in chunk `id`.
    pub fn chunk_len(&self, id: ChunkId) -> usize {
        self.chunks[id.index()].points.len()
    }

    /// Depth of the deepest per-chunk tree. Deterministic-termination
    /// deadlines should not cut below this: a traversal must at least
    /// reach a leaf before the deadline starts trimming backtracking
    /// (Fig. 9's deadline covers the descent).
    pub fn max_tree_depth(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.tree.depth())
            .max()
            .unwrap_or(0)
    }

    /// Exact kNN that opens chunks nearest-first and prunes chunks whose
    /// bounding box cannot beat the current worst candidate. Matches a
    /// monolithic kd-tree's results exactly while counting how many
    /// chunks the query actually touches (Fig. 6).
    pub fn knn_adaptive(
        &self,
        query: Point3,
        k: usize,
        per_chunk_budget: StepBudget,
    ) -> (Vec<Neighbor>, ChunkSearchStats) {
        let mut order: Vec<(f32, usize)> = (0..self.chunks.len())
            .filter(|&c| !self.chunks[c].points.is_empty())
            .map(|c| {
                let bb = self.grid.chunk_bounds(ChunkId(c as u32));
                (bb.dist_sq_to_point(query), c)
            })
            .collect();
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN distance"));
        let mut heap = KnnHeap::new(k);
        let mut stats = ChunkSearchStats {
            chunks_accessed: 0,
            steps: 0,
            completed: true,
        };
        for (lower_bound, c) in order {
            if heap.is_full() && lower_bound > heap.worst() {
                break;
            }
            let chunk = &self.chunks[c];
            let (hits, t) = chunk.tree.knn(&chunk.points, query, k, per_chunk_budget);
            stats.chunks_accessed += 1;
            stats.steps += t.steps;
            stats.completed &= t.completed;
            for h in hits {
                heap.offer(Neighbor::new(chunk.global[h.index as usize], h.dist_sq));
            }
        }
        (heap.into_sorted(), stats)
    }

    /// Compulsory-splitting kNN: only the chunks in `window` are
    /// searched; each chunk traversal is capped by `per_chunk_budget`.
    pub fn knn_in_window(
        &self,
        query: Point3,
        k: usize,
        window: &[ChunkId],
        per_chunk_budget: StepBudget,
    ) -> (Vec<Neighbor>, ChunkSearchStats) {
        let mut heap = KnnHeap::new(k);
        let mut stats = ChunkSearchStats {
            chunks_accessed: 0,
            steps: 0,
            completed: true,
        };
        for &cid in window {
            let chunk = &self.chunks[cid.index()];
            if chunk.points.is_empty() {
                continue;
            }
            let (hits, t) = chunk.tree.knn(&chunk.points, query, k, per_chunk_budget);
            stats.chunks_accessed += 1;
            stats.steps += t.steps;
            stats.completed &= t.completed;
            for h in hits {
                heap.offer(Neighbor::new(chunk.global[h.index as usize], h.dist_sq));
            }
        }
        (heap.into_sorted(), stats)
    }

    /// Compulsory-splitting range search within a chunk window.
    pub fn range_in_window(
        &self,
        query: Point3,
        radius: f32,
        window: &[ChunkId],
        per_chunk_budget: StepBudget,
    ) -> (Vec<Neighbor>, ChunkSearchStats) {
        let mut out = Vec::new();
        let mut stats = ChunkSearchStats {
            chunks_accessed: 0,
            steps: 0,
            completed: true,
        };
        for &cid in window {
            let chunk = &self.chunks[cid.index()];
            if chunk.points.is_empty() {
                continue;
            }
            let (hits, t) = chunk
                .tree
                .range(&chunk.points, query, radius, per_chunk_budget);
            stats.chunks_accessed += 1;
            stats.steps += t.steps;
            stats.completed &= t.completed;
            for h in hits {
                out.push(Neighbor::new(chunk.global[h.index as usize], h.dist_sq));
            }
        }
        out.sort_by(|a, b| a.dist_sq.partial_cmp(&b.dist_sq).expect("NaN distance"));
        (out, stats)
    }

    /// The chunk window a query in chunk `chunk` is served from: the
    /// kernel-sized window whose anchor centers on the chunk, clamped to
    /// the grid.
    pub fn window_for_chunk(&self, chunk: ChunkId, spec: &WindowSpec) -> Vec<ChunkId> {
        window_for_chunk(self.grid.dims(), chunk, spec)
    }
}

/// Computes the kernel window serving queries of `chunk` (anchor centered
/// on the chunk and clamped so the kernel fits the grid).
pub fn window_for_chunk(dims: GridDims, chunk: ChunkId, spec: &WindowSpec) -> Vec<ChunkId> {
    let (cx, cy, cz) = dims.coords(chunk);
    let anchor = |c: u32, k: u32, n: u32| -> u32 {
        let k = k.min(n);
        let half = (k - 1) / 2;
        c.saturating_sub(half).min(n - k)
    };
    let (kx, ky, kz) = spec.kernel;
    let ax = anchor(cx, kx, dims.nx);
    let ay = anchor(cy, ky, dims.ny);
    let az = anchor(cz, kz, dims.nz);
    let mut out = Vec::with_capacity(spec.chunks_per_window());
    for dz in 0..kz.min(dims.nz) {
        for dy in 0..ky.min(dims.ny) {
            for dx in 0..kx.min(dims.nx) {
                out.push(dims.linear(ax + dx, ay + dy, az + dz));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use streamgrid_pointcloud::Aabb;

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random_range(0.0..16.0),
                    rng.random_range(0.0..16.0),
                    rng.random_range(0.0..4.0),
                )
            })
            .collect()
    }

    fn index(points: &[Point3], nx: u32, ny: u32) -> ChunkedIndex {
        let grid = ChunkGrid::new(
            Aabb::new(Point3::ZERO, Point3::new(16.0, 16.0, 4.0)),
            GridDims::new(nx, ny, 1),
        );
        ChunkedIndex::build(points, grid)
    }

    #[test]
    fn adaptive_matches_brute_force() {
        let pts = random_points(800, 1);
        let idx = index(&pts, 4, 4);
        for seed in 0..10u64 {
            let q = random_points(1, 100 + seed)[0];
            let (hits, stats) = idx.knn_adaptive(q, 6, StepBudget::Unlimited);
            let expected = bruteforce::knn(&pts, q, 6);
            assert!(stats.completed);
            for (h, e) in hits.iter().zip(&expected) {
                assert!((h.dist_sq - e.dist_sq).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn adaptive_touches_few_chunks_for_small_k() {
        // Fig. 6's premise: small k ⇒ few chunks accessed.
        let pts = random_points(4000, 2);
        let idx = index(&pts, 8, 8);
        let (_, stats) = idx.knn_adaptive(Point3::new(8.0, 8.0, 2.0), 1, StepBudget::Unlimited);
        assert!(
            stats.chunks_accessed <= 8,
            "1-NN accessed {} of 64 chunks",
            stats.chunks_accessed
        );
    }

    #[test]
    fn accessed_chunks_grow_with_k() {
        let pts = random_points(4000, 3);
        let idx = index(&pts, 8, 8);
        let q = Point3::new(8.0, 8.0, 2.0);
        let small = idx
            .knn_adaptive(q, 1, StepBudget::Unlimited)
            .1
            .chunks_accessed;
        let large = idx
            .knn_adaptive(q, 256, StepBudget::Unlimited)
            .1
            .chunks_accessed;
        assert!(large >= small);
        assert!(large < 64, "even 256-NN should not touch every chunk");
    }

    #[test]
    fn window_search_restricts_to_window() {
        let pts = random_points(1000, 4);
        let idx = index(&pts, 4, 1);
        let window = [ChunkId(0), ChunkId(1)];
        let (hits, stats) = idx.knn_in_window(
            Point3::new(2.0, 8.0, 2.0),
            16,
            &window,
            StepBudget::Unlimited,
        );
        assert_eq!(stats.chunks_accessed, 2);
        // All results must come from the left half of the cloud (x < 8).
        for h in hits {
            assert!(pts[h.index as usize].x < 8.0 + 1e-5);
        }
    }

    #[test]
    fn window_search_approximates_exact_nearby() {
        // For queries well inside the window, CS results equal exact ones.
        let pts = random_points(2000, 5);
        let idx = index(&pts, 4, 1);
        let q = Point3::new(1.5, 8.0, 2.0); // deep inside chunk 0
        let window = idx.window_for_chunk(ChunkId(0), &WindowSpec::new((2, 1, 1), (1, 1, 1)));
        let (cs, _) = idx.knn_in_window(q, 4, &window, StepBudget::Unlimited);
        let exact = bruteforce::knn(&pts, q, 4);
        for (a, b) in cs.iter().zip(&exact) {
            assert!((a.dist_sq - b.dist_sq).abs() < 1e-5);
        }
    }

    #[test]
    fn window_for_chunk_clamps_at_edges() {
        let dims = GridDims::new(4, 1, 1);
        let spec = WindowSpec::new((2, 1, 1), (1, 1, 1));
        assert_eq!(
            window_for_chunk(dims, ChunkId(0), &spec),
            vec![ChunkId(0), ChunkId(1)]
        );
        assert_eq!(
            window_for_chunk(dims, ChunkId(3), &spec),
            vec![ChunkId(2), ChunkId(3)]
        );
    }

    #[test]
    fn dt_budget_propagates() {
        let pts = random_points(3000, 6);
        let idx = index(&pts, 2, 2);
        let (_, stats) = idx.knn_adaptive(Point3::new(8.0, 8.0, 2.0), 32, StepBudget::Capped(5));
        assert!(!stats.completed);
    }

    #[test]
    fn range_in_window_sorted_and_bounded() {
        let pts = random_points(1500, 7);
        let idx = index(&pts, 4, 4);
        let q = Point3::new(8.0, 8.0, 2.0);
        let window: Vec<ChunkId> = (0..16).map(ChunkId).collect();
        let (hits, _) = idx.range_in_window(q, 2.0, &window, StepBudget::Unlimited);
        let expected = bruteforce::range(&pts, q, 2.0);
        assert_eq!(hits.len(), expected.len());
        assert!(hits.windows(2).all(|w| w[0].dist_sq <= w[1].dist_sq));
    }

    #[test]
    fn large_k_window_search_saves_steps() {
        // The paper's Sec. 8.3 claim: the smaller search range from CS
        // (window ⊂ grid) plus the DT cap cuts traversal steps. The
        // effect needs the large-k regime it profiles (k = 32) *and*
        // LiDAR-like anisotropic density (rings/surfaces), where exact
        // kd-tree searches backtrack heavily — uniform clouds do not
        // show it.
        use streamgrid_pointcloud::datasets::lidar::{scan, LidarConfig, Scene};
        let scene = Scene::urban(31, 45.0, 20, 10);
        let cfg = LidarConfig {
            beams: 16,
            azimuth_steps: 1080,
            ..LidarConfig::default()
        };
        let sweep = scan(&scene, &cfg, Point3::ZERO, 0.0, 7);
        let pts = sweep.cloud.points().to_vec();
        let grid = ChunkGrid::new(
            Aabb::from_points(pts.iter().copied()).unwrap(),
            GridDims::new(8, 8, 1),
        );
        let idx = ChunkedIndex::build(&pts, grid);
        let full = KdTree::build(&pts);
        let spec = WindowSpec::new((2, 2, 1), (1, 1, 1));
        let mut exact_steps = 0u64;
        let mut cs_dt_steps = 0u64;
        for qi in (0..pts.len()).step_by(pts.len() / 40) {
            let q = pts[qi];
            // Hardware-style fixed-order traversal: the baseline the
            // paper profiles (QuickNN/Tigris-class engines).
            exact_steps += full
                .knn_with_order(
                    &pts,
                    q,
                    32,
                    StepBudget::Unlimited,
                    crate::kdtree::TraversalOrder::Fixed,
                )
                .1
                .steps;
            let window = idx.window_for_chunk(idx.grid().chunk_of(q), &spec);
            let (_, stats) = idx.knn_in_window(q, 32, &window, StepBudget::Capped(120));
            cs_dt_steps += stats.steps;
        }
        assert!(
            cs_dt_steps * 2 < exact_steps,
            "CS+DT {cs_dt_steps} vs exact {exact_steps}"
        );
    }

    #[test]
    fn empty_chunks_are_skipped() {
        // All points in one corner: most chunks empty.
        let pts: Vec<Point3> = (0..100).map(|i| Point3::splat(0.01 * i as f32)).collect();
        let idx = index(&pts, 8, 8);
        let (hits, stats) = idx.knn_adaptive(Point3::ZERO, 5, StepBudget::Unlimited);
        assert_eq!(hits.len(), 5);
        assert!(stats.chunks_accessed <= 4);
    }
}
