//! Exact brute-force reference searches.
//!
//! These are the oracles property tests compare the tree structures
//! against, and the per-chunk search kernel for small chunk windows where
//! building a tree is not worth it.

use streamgrid_pointcloud::Point3;

use crate::neighbor::{KnnHeap, Neighbor};

/// Exact k-nearest neighbors by linear scan, sorted by ascending
/// distance. Returns fewer than `k` when the set is smaller than `k`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn knn(points: &[Point3], query: Point3, k: usize) -> Vec<Neighbor> {
    let mut heap = KnnHeap::new(k);
    for (i, &p) in points.iter().enumerate() {
        heap.offer(Neighbor::new(i as u32, p.dist_sq(query)));
    }
    heap.into_sorted()
}

/// Exact k-nearest neighbors over an index subset (`indices` into
/// `points`), returning indices into `points`.
pub fn knn_subset(points: &[Point3], indices: &[u32], query: Point3, k: usize) -> Vec<Neighbor> {
    let mut heap = KnnHeap::new(k);
    for &i in indices {
        heap.offer(Neighbor::new(i, points[i as usize].dist_sq(query)));
    }
    heap.into_sorted()
}

/// Exact radius search by linear scan, sorted by ascending distance.
pub fn range(points: &[Point3], query: Point3, radius: f32) -> Vec<Neighbor> {
    let r_sq = radius * radius;
    let mut out: Vec<Neighbor> = points
        .iter()
        .enumerate()
        .filter_map(|(i, &p)| {
            let d = p.dist_sq(query);
            (d <= r_sq).then_some(Neighbor::new(i as u32, d))
        })
        .collect();
    out.sort_by(|a, b| a.dist_sq.partial_cmp(&b.dist_sq).expect("NaN distance"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Vec<Point3> {
        (0..10).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect()
    }

    #[test]
    fn knn_returns_closest() {
        let pts = line();
        let hits = knn(&pts, Point3::new(4.2, 0.0, 0.0), 3);
        let idx: Vec<u32> = hits.iter().map(|n| n.index).collect();
        assert_eq!(idx, vec![4, 5, 3]);
    }

    #[test]
    fn knn_short_set() {
        let pts = line();
        assert_eq!(knn(&pts, Point3::ZERO, 100).len(), 10);
    }

    #[test]
    fn range_includes_boundary() {
        let pts = line();
        let hits = range(&pts, Point3::ZERO, 2.0);
        assert_eq!(hits.len(), 3); // 0, 1, 2
    }

    #[test]
    fn subset_restricts_candidates() {
        let pts = line();
        let hits = knn_subset(&pts, &[7, 8, 9], Point3::ZERO, 2);
        let idx: Vec<u32> = hits.iter().map(|n| n.index).collect();
        assert_eq!(idx, vec![7, 8]);
    }
}
