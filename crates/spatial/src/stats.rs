//! Small statistics helpers for the profiling experiments.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 25th percentile.
    pub p25: f64,
    /// 75th percentile.
    pub p75: f64,
}

impl Summary {
    /// Computes summary statistics.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN value"));
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: quantile_sorted(&sorted, 0.5),
            p25: quantile_sorted(&sorted, 0.25),
            p75: quantile_sorted(&sorted, 0.75),
        }
    }

    /// Convenience constructor from integer samples (step counts).
    pub fn from_counts(values: &[u64]) -> Self {
        let v: Vec<f64> = values.iter().map(|&x| x as f64).collect();
        Summary::from_values(&v)
    }
}

/// Linear-interpolated quantile of an already-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::from_values(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn summary_of_linear_sample() {
        let v: Vec<f64> = (1..=5).map(|i| i as f64).collect();
        let s = Summary::from_values(&v);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile_sorted(&v, 0.5), 5.0);
        assert_eq!(quantile_sorted(&v, 0.0), 0.0);
        assert_eq!(quantile_sorted(&v, 1.0), 10.0);
    }

    #[test]
    fn from_counts_matches_values() {
        let s = Summary::from_counts(&[1, 2, 3]);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::from_values(&[]);
    }
}
