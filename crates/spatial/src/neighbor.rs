//! Neighbor candidates and the bounded candidate heap shared by all
//! search structures.

use serde::{Deserialize, Serialize};

/// One search result: a point index plus its squared distance to the
/// query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Index of the neighbor in the searched point set.
    pub index: u32,
    /// Squared Euclidean distance to the query.
    pub dist_sq: f32,
}

impl Neighbor {
    /// Creates a neighbor record.
    pub fn new(index: u32, dist_sq: f32) -> Self {
        Neighbor { index, dist_sq }
    }
}

/// A bounded max-heap of the `k` best (smallest-distance) candidates seen
/// so far.
///
/// `worst()` gives the current pruning bound: a subtree whose minimum
/// possible distance exceeds it cannot improve the result.
#[derive(Debug, Clone)]
pub struct KnnHeap {
    k: usize,
    // Max-heap by dist_sq, stored as a binary heap in a Vec.
    heap: Vec<Neighbor>,
}

impl KnnHeap {
    /// Creates an empty heap that retains the best `k` candidates.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KnnHeap {
            k,
            heap: Vec::with_capacity(k),
        }
    }

    /// Number of candidates currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no candidate has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` once `k` candidates are held.
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// The current pruning bound: the distance of the worst retained
    /// candidate, or `f32::INFINITY` while the heap is not yet full.
    pub fn worst(&self) -> f32 {
        if self.is_full() {
            self.heap[0].dist_sq
        } else {
            f32::INFINITY
        }
    }

    /// Offers a candidate; it is retained if it beats the current worst.
    pub fn offer(&mut self, candidate: Neighbor) {
        if self.heap.len() < self.k {
            self.heap.push(candidate);
            self.sift_up(self.heap.len() - 1);
        } else if candidate.dist_sq < self.heap[0].dist_sq {
            self.heap[0] = candidate;
            self.sift_down(0);
        }
    }

    /// Extracts the retained candidates sorted by ascending distance.
    pub fn into_sorted(mut self) -> Vec<Neighbor> {
        self.heap
            .sort_by(|a, b| a.dist_sq.partial_cmp(&b.dist_sq).expect("NaN distance"));
        self.heap
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].dist_sq > self.heap[parent].dist_sq {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.heap.len() && self.heap[l].dist_sq > self.heap[largest].dist_sq {
                largest = l;
            }
            if r < self.heap.len() && self.heap[r].dist_sq > self.heap[largest].dist_sq {
                largest = r;
            }
            if largest == i {
                return;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_best() {
        let mut heap = KnnHeap::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0, 0.5].iter().enumerate() {
            heap.offer(Neighbor::new(i as u32, *d));
        }
        let sorted = heap.into_sorted();
        let dists: Vec<f32> = sorted.iter().map(|n| n.dist_sq).collect();
        assert_eq!(dists, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    fn worst_is_infinite_until_full() {
        let mut heap = KnnHeap::new(2);
        assert_eq!(heap.worst(), f32::INFINITY);
        heap.offer(Neighbor::new(0, 1.0));
        assert_eq!(heap.worst(), f32::INFINITY);
        heap.offer(Neighbor::new(1, 2.0));
        assert_eq!(heap.worst(), 2.0);
    }

    #[test]
    fn rejects_worse_candidates_when_full() {
        let mut heap = KnnHeap::new(1);
        heap.offer(Neighbor::new(0, 1.0));
        heap.offer(Neighbor::new(1, 9.0));
        let out = heap.into_sorted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].index, 0);
    }

    #[test]
    fn handles_duplicate_distances() {
        let mut heap = KnnHeap::new(4);
        for i in 0..8u32 {
            heap.offer(Neighbor::new(i, 1.0));
        }
        assert_eq!(heap.into_sorted().len(), 4);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = KnnHeap::new(0);
    }
}
