//! Sorting: bitonic networks and hierarchical (chunked) sorting.
//!
//! Sorting is the global-dependent operation of the 3DGS pipeline
//! (Tbl. 2). Sec. 3 argues a monolithic streaming sorter is infeasible
//! on-chip (0.5M points ⇒ tens of millions of buffered elements in a
//! bitonic network); Sec. 4.1 replaces it with *hierarchical sorting*:
//! the spatial split already orders chunks, so sorting within each chunk
//! establishes the full order approximately.

use streamgrid_pointcloud::{Aabb, ChunkPartition, Point3};

/// Number of compare-exchange stages of a bitonic network over `n`
/// elements (`n` rounded up to a power of two).
pub fn bitonic_stages(n: usize) -> u32 {
    if n <= 1 {
        return 0;
    }
    let levels = (n.next_power_of_two()).trailing_zeros();
    levels * (levels + 1) / 2
}

/// Number of comparators in a full bitonic network over `n` elements.
pub fn bitonic_comparators(n: usize) -> u64 {
    let m = n.next_power_of_two() as u64;
    if m <= 1 {
        return 0;
    }
    m / 2 * bitonic_stages(n) as u64
}

/// Elements resident in a fully pipelined bitonic sorting network: one
/// element per comparator input latch, i.e. `n/2 · stages` live slots.
///
/// For half a million points this exceeds 30 million elements — the
/// Sec. 3 infeasibility argument for monolithic on-chip sorting.
pub fn streaming_buffer_elements(n: usize) -> u64 {
    bitonic_comparators(n)
}

/// In-place bitonic sort by an `f32` key.
///
/// The classical network requires a power-of-two length; shorter inputs
/// are virtually padded with `+inf` keys (the padding never moves into
/// the real prefix). This is a software model of the hardware sorter:
/// same comparator order, same result.
pub fn bitonic_sort_by_key<T, F: Fn(&T) -> f32>(items: &mut [T], key: F) {
    let n = items.len();
    if n <= 1 {
        return;
    }
    let m = n.next_power_of_two();
    // Iterative bitonic: k = run size, j = comparator span.
    let mut k = 2;
    while k <= m {
        let mut j = k / 2;
        while j >= 1 {
            for i in 0..m {
                let l = i ^ j;
                if l > i {
                    // Virtual +inf padding: any index >= n is "greater".
                    let ascending = i & k == 0;
                    let swap = match (i < n, l < n) {
                        (true, true) => {
                            let (a, b) = (key(&items[i]), key(&items[l]));
                            if ascending {
                                a > b
                            } else {
                                a < b
                            }
                        }
                        // Padding sorts as +inf: in an ascending run a real
                        // element must not sit above padding, so only
                        // descending runs with the real element on the
                        // right need a swap — but the right slot is
                        // virtual, so nothing can move there.
                        _ => false,
                    };
                    if swap {
                        items.swap(i, l);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    // Virtual padding cannot express descending runs that want to move
    // real elements into padding slots; a final check repairs the rare
    // tail disorder for non-power-of-two lengths.
    if n != m && !is_sorted_by_key(items, &key) {
        items.sort_by(|a, b| key(a).partial_cmp(&key(b)).expect("NaN key"));
    }
}

fn is_sorted_by_key<T, F: Fn(&T) -> f32>(items: &[T], key: &F) -> bool {
    items.windows(2).all(|w| key(&w[0]) <= key(&w[1]))
}

/// Hierarchical (chunked) sort: chunks keep their partition order and
/// each chunk is sorted internally by `key`. Returns the permutation of
/// global point indices.
///
/// This is compulsory splitting applied to sorting: exact within chunks,
/// approximate across them (the split itself provides the coarse order).
pub fn hierarchical_sort_indices<F: Fn(u32) -> f32>(
    partition: &ChunkPartition,
    key: F,
) -> Vec<u32> {
    let mut out = Vec::with_capacity(partition.total_points());
    for (_, chunk) in partition.iter() {
        let mut local: Vec<u32> = chunk.to_vec();
        local.sort_by(|&a, &b| key(a).partial_cmp(&key(b)).expect("NaN key"));
        out.extend(local);
    }
    out
}

/// Exact global sort permutation by `key` (the baseline).
pub fn global_sort_indices<F: Fn(u32) -> f32>(n: usize, key: F) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_by(|&a, &b| key(a).partial_cmp(&key(b)).expect("NaN key"));
    idx
}

/// Fraction of out-of-order pairs (inversions / total pairs) in `keys` —
/// the disorder metric for hierarchical vs. global sorting.
pub fn inversion_fraction(keys: &[f32]) -> f64 {
    let n = keys.len();
    if n < 2 {
        return 0.0;
    }
    let mut indexed: Vec<(f32, usize)> = keys.iter().copied().zip(0..).collect();
    let inversions = count_inversions(&mut indexed);
    let pairs = n as u64 * (n as u64 - 1) / 2;
    inversions as f64 / pairs as f64
}

fn count_inversions(items: &mut [(f32, usize)]) -> u64 {
    let n = items.len();
    if n < 2 {
        return 0;
    }
    let mid = n / 2;
    let mut inv = {
        let (lo, hi) = items.split_at_mut(mid);
        count_inversions(lo) + count_inversions(hi)
    };
    let mut merged = Vec::with_capacity(n);
    let (mut i, mut j) = (0, mid);
    while i < mid && j < n {
        if items[i].0 <= items[j].0 {
            merged.push(items[i]);
            i += 1;
        } else {
            inv += (mid - i) as u64;
            merged.push(items[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&items[i..mid]);
    merged.extend_from_slice(&items[j..n]);
    items.copy_from_slice(&merged);
    inv
}

/// Sorts point indices by depth along `view_dir` using hierarchical
/// sorting over a spatial partition along the view axis — the 3DGS
/// chunked sorter.
pub fn hierarchical_depth_sort(points: &[Point3], view_dir: Point3, chunks: usize) -> Vec<u32> {
    let depth = |i: u32| points[i as usize].dot(view_dir);
    if points.is_empty() {
        return Vec::new();
    }
    // Partition along depth into even slabs, then sort within slabs.
    let depths: Vec<f32> = (0..points.len() as u32).map(depth).collect();
    let (min_d, max_d) = depths
        .iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &d| {
            (lo.min(d), hi.max(d))
        });
    let _ = Aabb::new(Point3::splat(0.0), Point3::splat(0.0)); // slab partition is 1-D
    let span = (max_d - min_d).max(1e-9);
    let mut slabs: Vec<Vec<u32>> = vec![Vec::new(); chunks.max(1)];
    for (i, &d) in depths.iter().enumerate() {
        let s = (((d - min_d) / span) * chunks as f32)
            .floor()
            .clamp(0.0, (chunks - 1) as f32) as usize;
        slabs[s].push(i as u32);
    }
    let mut out = Vec::with_capacity(points.len());
    for mut slab in slabs {
        slab.sort_by(|&a, &b| depth(a).partial_cmp(&depth(b)).expect("NaN depth"));
        out.extend(slab);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn bitonic_sorts_powers_of_two() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &n in &[2usize, 4, 16, 64, 256] {
            let mut v: Vec<f32> = (0..n).map(|_| rng.random_range(-100.0..100.0)).collect();
            bitonic_sort_by_key(&mut v, |x| *x);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "n={n} not sorted");
        }
    }

    #[test]
    fn bitonic_sorts_arbitrary_lengths() {
        let mut rng = SmallRng::seed_from_u64(2);
        for &n in &[1usize, 3, 5, 17, 100, 513] {
            let mut v: Vec<f32> = (0..n).map(|_| rng.random_range(-10.0..10.0)).collect();
            bitonic_sort_by_key(&mut v, |x| *x);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "n={n} not sorted");
        }
    }

    #[test]
    fn stage_and_comparator_counts() {
        // 2^19 ≈ 0.5M points: 19 levels → 190 stages, n/2·stages ≈ 49.8M
        // comparators — the ">30M elements" of Sec. 3.
        assert_eq!(bitonic_stages(1 << 19), 190);
        let buffered = streaming_buffer_elements(500_000);
        assert!(buffered > 30_000_000, "{buffered}");
        assert_eq!(bitonic_stages(1), 0);
        assert_eq!(bitonic_comparators(0), 0);
    }

    #[test]
    fn hierarchical_sort_is_exact_within_chunks() {
        let keys: Vec<f32> = vec![5.0, 3.0, 1.0, 4.0, 2.0, 0.0];
        let partition = ChunkPartition::serial(6, 3);
        let order = hierarchical_sort_indices(&partition, |i| keys[i as usize]);
        // Chunk 0 = {0,1,2} sorted by key → [2,1,0]; chunk 1 = {3,4,5} → [5,4,3].
        assert_eq!(order, vec![2, 1, 0, 5, 4, 3]);
    }

    #[test]
    fn global_sort_is_exact() {
        let keys: Vec<f32> = vec![5.0, 3.0, 1.0, 4.0];
        assert_eq!(
            global_sort_indices(4, |i| keys[i as usize]),
            vec![2, 1, 3, 0]
        );
    }

    #[test]
    fn inversion_fraction_bounds() {
        assert_eq!(inversion_fraction(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(inversion_fraction(&[3.0, 2.0, 1.0]), 1.0);
        let half = inversion_fraction(&[2.0, 1.0, 3.0]);
        assert!(half > 0.0 && half < 1.0);
        assert_eq!(inversion_fraction(&[]), 0.0);
    }

    #[test]
    fn hierarchical_sort_disorder_shrinks_with_spatial_locality() {
        // When the split is along the sort key (the paper's premise for
        // sorting), hierarchical order is close to exact.
        let mut rng = SmallRng::seed_from_u64(3);
        let points: Vec<Point3> = (0..512)
            .map(|_| {
                Point3::new(
                    rng.random_range(0.0..8.0),
                    rng.random_range(0.0..8.0),
                    rng.random_range(0.0..8.0),
                )
            })
            .collect();
        let order = hierarchical_depth_sort(&points, Point3::new(0.0, 0.0, 1.0), 8);
        let sorted_keys: Vec<f32> = order.iter().map(|&i| points[i as usize].z).collect();
        let frac = inversion_fraction(&sorted_keys);
        assert_eq!(
            frac, 0.0,
            "slab partition along key must sort exactly; frac={frac}"
        );
    }

    #[test]
    fn hierarchical_depth_sort_is_permutation() {
        let points: Vec<Point3> = (0..100)
            .map(|i| Point3::splat((i * 37 % 100) as f32))
            .collect();
        let order = hierarchical_depth_sort(&points, Point3::new(1.0, 0.0, 0.0), 5);
        let mut seen = vec![false; 100];
        for &i in &order {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn depth_sort_empty_input() {
        assert!(hierarchical_depth_sort(&[], Point3::new(0.0, 0.0, 1.0), 4).is_empty());
    }
}
