//! Spatial indexing substrate for the StreamGrid reproduction.
//!
//! Point-cloud pipelines lean on three global-dependent operations
//! (Sec. 2.1 of the paper): sorting, range search, and kNN search. This
//! crate implements them with the instrumentation the paper's techniques
//! need:
//!
//! * [`kdtree::KdTree`] — kNN/range with per-query traversal-step
//!   accounting and [`kdtree::StepBudget`] *deterministic termination*;
//! * [`octree::Octree`] — streaming (chunk-at-a-time) octree;
//! * [`chunked::ChunkedIndex`] — per-chunk trees with window-restricted
//!   search, i.e. *compulsory splitting* for neighbor queries;
//! * [`sort`] — bitonic network models and hierarchical chunked sorting;
//! * [`bruteforce`] — exact oracles for testing;
//! * [`stats`] — summaries for the profiling experiments.
//!
//! # Examples
//!
//! Deterministic termination at 25% of the profiled traversal length:
//!
//! ```
//! use streamgrid_pointcloud::Point3;
//! use streamgrid_spatial::kdtree::{deadline_from_profile, KdTree, StepBudget};
//!
//! let pts: Vec<Point3> = (0..500)
//!     .map(|i| Point3::new((i % 25) as f32, (i / 25) as f32, (i % 7) as f32))
//!     .collect();
//! let tree = KdTree::build(&pts);
//! let profile = tree.profile_steps(&pts, &pts[..32], 8);
//! let deadline = deadline_from_profile(&profile, 0.25);
//! let (hits, stats) = tree.knn(&pts, Point3::new(12.0, 10.0, 3.0), 8, deadline);
//! assert!(!hits.is_empty());
//! let _ = stats.completed; // may be false: that is the point
//! ```

pub mod bruteforce;
pub mod chunked;
pub mod kdtree;
pub mod neighbor;
pub mod octree;
pub mod sort;
pub mod stats;

pub use chunked::{ChunkSearchStats, ChunkedIndex};
pub use kdtree::{deadline_from_profile, KdTree, StepBudget, TraversalOrder, TraversalStats};
pub use neighbor::{KnnHeap, Neighbor};
pub use octree::Octree;
