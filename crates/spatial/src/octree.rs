//! Streaming octree.
//!
//! The octree supports incremental (chunk-at-a-time) insertion, so a
//! compulsorily-split stream can build its index as chunks arrive instead
//! of waiting for the whole cloud — the "streaming octree" use-case the
//! StreamGrid pipeline needs for spatially-partitioned inputs. Queries
//! support the same [`StepBudget`] deterministic termination as the
//! kd-tree.

use streamgrid_pointcloud::{Aabb, Point3};

use crate::kdtree::{StepBudget, TraversalStats};
use crate::neighbor::{KnnHeap, Neighbor};

const NIL: i32 = -1;

#[derive(Debug, Clone)]
enum NodeKind {
    /// Leaf holding point indices.
    Leaf(Vec<u32>),
    /// Internal node with 8 child slots.
    Internal([i32; 8]),
}

#[derive(Debug, Clone)]
struct Node {
    bounds: Aabb,
    kind: NodeKind,
}

/// An octree over points owned by the caller.
///
/// # Examples
///
/// ```
/// use streamgrid_pointcloud::{Aabb, Point3};
/// use streamgrid_spatial::kdtree::StepBudget;
/// use streamgrid_spatial::octree::Octree;
///
/// let bounds = Aabb::new(Point3::ZERO, Point3::splat(10.0));
/// let mut tree = Octree::new(bounds, 4);
/// let pts: Vec<Point3> = (0..50).map(|i| Point3::splat(i as f32 * 0.2)).collect();
/// tree.insert_slice(&pts, 0);
/// let (hits, _) = tree.knn(&pts, Point3::splat(5.0), 3, StepBudget::Unlimited);
/// assert_eq!(hits.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Octree {
    nodes: Vec<Node>,
    root: i32,
    leaf_capacity: usize,
    len: usize,
}

impl Octree {
    /// Creates an empty octree covering `bounds` with the given leaf
    /// capacity (leaves split when they exceed it).
    ///
    /// # Panics
    ///
    /// Panics if `leaf_capacity == 0`.
    pub fn new(bounds: Aabb, leaf_capacity: usize) -> Self {
        assert!(leaf_capacity > 0, "leaf capacity must be positive");
        let root = Node {
            bounds,
            kind: NodeKind::Leaf(Vec::new()),
        };
        Octree {
            nodes: vec![root],
            root: 0,
            leaf_capacity,
            len: 0,
        }
    }

    /// Number of inserted points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no point has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of tree nodes (internal + leaf).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Inserts a single point by its index into the caller's slice.
    ///
    /// Points outside the root bounds are clamped into it (consistent
    /// with [`streamgrid_pointcloud::ChunkGrid::chunk_of`]).
    pub fn insert(&mut self, points: &[Point3], index: u32) {
        let root_bounds = self.nodes[self.root as usize].bounds;
        let p = clamp_into(points[index as usize], &root_bounds);
        let mut node = self.root;
        loop {
            if matches!(self.nodes[node as usize].kind, NodeKind::Leaf(_)) {
                let over_capacity = match &mut self.nodes[node as usize].kind {
                    NodeKind::Leaf(items) => {
                        items.push(index);
                        items.len() > self.leaf_capacity
                    }
                    NodeKind::Internal(_) => unreachable!(),
                };
                self.len += 1;
                if over_capacity {
                    self.split_leaf(points, node);
                }
                return;
            }
            let bounds = self.nodes[node as usize].bounds;
            let oct = octant_of(&bounds, p);
            let child = match &self.nodes[node as usize].kind {
                NodeKind::Internal(c) => c[oct],
                NodeKind::Leaf(_) => unreachable!(),
            };
            if child == NIL {
                let slot = self.nodes.len() as i32;
                self.nodes.push(Node {
                    bounds: octant_bounds(&bounds, oct),
                    kind: NodeKind::Leaf(vec![index]),
                });
                if let NodeKind::Internal(c) = &mut self.nodes[node as usize].kind {
                    c[oct] = slot;
                }
                self.len += 1;
                return;
            }
            node = child;
        }
    }

    /// Inserts every point of `points[offset..]` (indices are global into
    /// `points`); chunk streaming calls this once per arriving chunk.
    pub fn insert_slice(&mut self, points: &[Point3], offset: u32) {
        for i in offset as usize..points.len() {
            self.insert(points, i as u32);
        }
    }

    /// Inserts the points at `indices`.
    pub fn insert_indices(&mut self, points: &[Point3], indices: &[u32]) {
        for &i in indices {
            self.insert(points, i);
        }
    }

    fn split_leaf(&mut self, points: &[Point3], node: i32) {
        let bounds = self.nodes[node as usize].bounds;
        // Degenerate cells (duplicate points) cannot split further.
        if bounds.extent().norm_sq() < 1e-12 {
            return;
        }
        let items = match std::mem::replace(
            &mut self.nodes[node as usize].kind,
            NodeKind::Internal([NIL; 8]),
        ) {
            NodeKind::Leaf(items) => items,
            NodeKind::Internal(_) => return,
        };
        // Re-inserting through the public path would recount; distribute
        // directly instead.
        for index in items {
            let p = clamp_into(points[index as usize], &bounds);
            let oct = octant_of(&bounds, p);
            let child = match &self.nodes[node as usize].kind {
                NodeKind::Internal(c) => c[oct],
                NodeKind::Leaf(_) => unreachable!(),
            };
            if child == NIL {
                let slot = self.nodes.len() as i32;
                self.nodes.push(Node {
                    bounds: octant_bounds(&bounds, oct),
                    kind: NodeKind::Leaf(vec![index]),
                });
                if let NodeKind::Internal(c) = &mut self.nodes[node as usize].kind {
                    c[oct] = slot;
                }
            } else {
                match &mut self.nodes[child as usize].kind {
                    NodeKind::Leaf(v) => {
                        v.push(index);
                        if v.len() > self.leaf_capacity {
                            self.split_leaf(points, child);
                        }
                    }
                    NodeKind::Internal(_) => {
                        // Rare: child already split during this loop; walk
                        // down via the normal path (cannot recount because
                        // we bypass insert()).
                        self.push_down(points, child, index);
                    }
                }
            }
        }
    }

    fn push_down(&mut self, points: &[Point3], mut node: i32, index: u32) {
        loop {
            let bounds = self.nodes[node as usize].bounds;
            match &mut self.nodes[node as usize].kind {
                NodeKind::Leaf(v) => {
                    v.push(index);
                    if v.len() > self.leaf_capacity {
                        self.split_leaf(points, node);
                    }
                    return;
                }
                NodeKind::Internal(_) => {
                    let p = clamp_into(points[index as usize], &bounds);
                    let oct = octant_of(&bounds, p);
                    let child = match &self.nodes[node as usize].kind {
                        NodeKind::Internal(c) => c[oct],
                        NodeKind::Leaf(_) => unreachable!(),
                    };
                    if child == NIL {
                        let slot = self.nodes.len() as i32;
                        self.nodes.push(Node {
                            bounds: octant_bounds(&bounds, oct),
                            kind: NodeKind::Leaf(vec![index]),
                        });
                        if let NodeKind::Internal(c) = &mut self.nodes[node as usize].kind {
                            c[oct] = slot;
                        }
                        return;
                    }
                    node = child;
                }
            }
        }
    }

    /// k-nearest-neighbor search with optional deterministic termination.
    /// Steps count node visits (internal and leaf).
    pub fn knn(
        &self,
        points: &[Point3],
        query: Point3,
        k: usize,
        budget: StepBudget,
    ) -> (Vec<Neighbor>, TraversalStats) {
        let mut heap = KnnHeap::new(k);
        let mut stats = TraversalStats {
            steps: 0,
            completed: true,
        };
        let limit = match budget {
            StepBudget::Unlimited => u64::MAX,
            StepBudget::Capped(n) => n,
        };
        if self.len > 0 {
            self.search(points, self.root, query, &mut heap, &mut stats, limit);
        }
        (heap.into_sorted(), stats)
    }

    fn search(
        &self,
        points: &[Point3],
        node: i32,
        query: Point3,
        heap: &mut KnnHeap,
        stats: &mut TraversalStats,
        limit: u64,
    ) {
        if node == NIL || !stats.completed {
            return;
        }
        if stats.steps >= limit {
            stats.completed = false;
            return;
        }
        stats.steps += 1;
        let n = &self.nodes[node as usize];
        if n.bounds.dist_sq_to_point(query) > heap.worst() {
            return;
        }
        match &n.kind {
            NodeKind::Leaf(items) => {
                for &i in items {
                    heap.offer(Neighbor::new(i, points[i as usize].dist_sq(query)));
                }
            }
            NodeKind::Internal(children) => {
                // Visit children nearest-first for better pruning.
                let mut order: Vec<(f32, i32)> = children
                    .iter()
                    .filter(|&&c| c != NIL)
                    .map(|&c| (self.nodes[c as usize].bounds.dist_sq_to_point(query), c))
                    .collect();
                order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN distance"));
                for (_, c) in order {
                    self.search(points, c, query, heap, stats, limit);
                }
            }
        }
    }
}

fn clamp_into(p: Point3, bounds: &Aabb) -> Point3 {
    p.max(bounds.min()).min(bounds.max())
}

fn octant_of(bounds: &Aabb, p: Point3) -> usize {
    let c = bounds.center();
    ((p.x >= c.x) as usize) | (((p.y >= c.y) as usize) << 1) | (((p.z >= c.z) as usize) << 2)
}

fn octant_bounds(bounds: &Aabb, oct: usize) -> Aabb {
    let c = bounds.center();
    let (min, max) = (bounds.min(), bounds.max());
    let x = if oct & 1 == 0 {
        (min.x, c.x)
    } else {
        (c.x, max.x)
    };
    let y = if oct & 2 == 0 {
        (min.y, c.y)
    } else {
        (c.y, max.y)
    };
    let z = if oct & 4 == 0 {
        (min.z, c.z)
    } else {
        (c.z, max.z)
    };
    Aabb::new(Point3::new(x.0, y.0, z.0), Point3::new(x.1, y.1, z.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random_range(0.0..10.0),
                    rng.random_range(0.0..10.0),
                    rng.random_range(0.0..10.0),
                )
            })
            .collect()
    }

    fn bounds() -> Aabb {
        Aabb::new(Point3::ZERO, Point3::splat(10.0))
    }

    #[test]
    fn insert_counts_points() {
        let pts = random_points(200, 1);
        let mut tree = Octree::new(bounds(), 8);
        tree.insert_slice(&pts, 0);
        assert_eq!(tree.len(), 200);
        assert!(tree.node_count() > 1);
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = random_points(500, 2);
        let mut tree = Octree::new(bounds(), 8);
        tree.insert_slice(&pts, 0);
        for seed in 0..10u64 {
            let q = random_points(1, 50 + seed)[0];
            let hits = tree.knn(&pts, q, 5, StepBudget::Unlimited).0;
            let expected = bruteforce::knn(&pts, q, 5);
            for (h, e) in hits.iter().zip(&expected) {
                assert!((h.dist_sq - e.dist_sq).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn streaming_build_equals_batch_build() {
        // Insert in two chunks; results must match a single-shot build.
        let pts = random_points(300, 3);
        let mut streaming = Octree::new(bounds(), 8);
        streaming.insert_indices(&pts, &(0..150u32).collect::<Vec<_>>());
        streaming.insert_indices(&pts, &(150..300u32).collect::<Vec<_>>());
        let mut batch = Octree::new(bounds(), 8);
        batch.insert_slice(&pts, 0);
        let q = Point3::splat(5.0);
        let a = streaming.knn(&pts, q, 7, StepBudget::Unlimited).0;
        let b = batch.knn(&pts, q, 7, StepBudget::Unlimited).0;
        let ai: Vec<f32> = a.iter().map(|n| n.dist_sq).collect();
        let bi: Vec<f32> = b.iter().map(|n| n.dist_sq).collect();
        assert_eq!(ai, bi);
    }

    #[test]
    fn capped_budget_reports_incomplete() {
        let pts = random_points(1000, 4);
        let mut tree = Octree::new(bounds(), 4);
        tree.insert_slice(&pts, 0);
        let (_, stats) = tree.knn(&pts, Point3::splat(5.0), 16, StepBudget::Capped(3));
        assert!(!stats.completed);
        assert!(stats.steps <= 3);
    }

    #[test]
    fn duplicate_points_do_not_split_forever() {
        let pts = vec![Point3::splat(1.0); 100];
        let mut tree = Octree::new(bounds(), 4);
        tree.insert_slice(&pts, 0);
        assert_eq!(tree.len(), 100);
        let hits = tree
            .knn(&pts, Point3::splat(1.0), 10, StepBudget::Unlimited)
            .0;
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn out_of_bounds_points_clamp() {
        let pts = vec![Point3::splat(-5.0), Point3::splat(20.0)];
        let mut tree = Octree::new(bounds(), 4);
        tree.insert_slice(&pts, 0);
        assert_eq!(tree.len(), 2);
        let hits = tree.knn(&pts, Point3::ZERO, 2, StepBudget::Unlimited).0;
        assert_eq!(hits.len(), 2);
    }
}
