//! kd-tree with traversal-step accounting and deterministic termination.
//!
//! The tree is the canonical point-cloud search structure the paper
//! profiles (Sec. 3: mean 8.4e3 traversal steps with std 6.8e3 for 32-NN
//! on KITTI) and the target of *deterministic termination* (Sec. 4.2,
//! Fig. 9): a query's traversal is capped at a fixed step budget and
//! returns its best-so-far candidates when the budget expires.
//!
//! Every query reports [`TraversalStats`] so experiments can profile step
//! distributions and derive deadlines from them.

use streamgrid_pointcloud::{Aabb, Point3};

use crate::neighbor::{KnnHeap, Neighbor};

/// Statistics of one query traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraversalStats {
    /// Nodes visited (the paper's "steps").
    pub steps: u64,
    /// `false` when the step budget expired before the traversal
    /// finished (the result is then the best found so far).
    pub completed: bool,
}

/// Step budget for a traversal. [`StepBudget::Unlimited`] is the canonical
/// algorithm; [`StepBudget::Capped`] is deterministic termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepBudget {
    /// Canonical traversal: run to completion.
    Unlimited,
    /// Deterministic termination with the given node-visit deadline.
    Capped(u64),
}

impl StepBudget {
    fn limit(self) -> u64 {
        match self {
            StepBudget::Unlimited => u64::MAX,
            StepBudget::Capped(n) => n,
        }
    }
}

/// Child-visit order during traversal.
///
/// Software searches descend the near side first, which tightens the
/// pruning bound early. Fixed-dataflow hardware traversals (the kd-tree
/// engines of QuickNN/Tigris the paper baselines against, and the
/// traversal the paper's Sec. 3 profile measures at a mean of 8.4e3
/// steps per 32-NN query) visit children in a fixed structural order —
/// the pruning bound stays loose far longer, which is exactly the
/// input-dependent step inflation StreamGrid attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraversalOrder {
    /// Near-side-first descent (best software practice).
    #[default]
    NearestFirst,
    /// Structural left-then-right DFS (hardware-style).
    Fixed,
}

#[derive(Debug, Clone)]
struct Node {
    /// Index into the point set.
    point: u32,
    /// Split axis (0..3); leaves use the axis of their parent split but
    /// never descend.
    axis: u8,
    left: i32,
    right: i32,
}

const NIL: i32 = -1;

/// A kd-tree over a borrowed point slice.
///
/// The tree stores indices into the slice passed at build time; queries
/// take the same slice again so the caller keeps ownership of the data
/// (matching the accelerator, where the tree is an index structure in
/// SRAM over points in the line buffer).
///
/// # Examples
///
/// ```
/// use streamgrid_pointcloud::Point3;
/// use streamgrid_spatial::kdtree::{KdTree, StepBudget};
///
/// let pts: Vec<Point3> = (0..100)
///     .map(|i| Point3::new(i as f32, (i * 7 % 13) as f32, 0.0))
///     .collect();
/// let tree = KdTree::build(&pts);
/// let (hits, stats) = tree.knn(&pts, Point3::new(50.0, 3.0, 0.0), 4, StepBudget::Unlimited);
/// assert_eq!(hits.len(), 4);
/// assert!(stats.completed);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    root: i32,
    bounds: Option<Aabb>,
    len: usize,
}

impl KdTree {
    /// Builds a balanced tree by median splits along the widest axis.
    pub fn build(points: &[Point3]) -> Self {
        let mut indices: Vec<u32> = (0..points.len() as u32).collect();
        let mut nodes = Vec::with_capacity(points.len());
        let bounds = Aabb::from_points(points.iter().copied());
        let root = match bounds {
            Some(bb) => build_recursive(points, &mut indices[..], &mut nodes, bb),
            None => NIL,
        };
        KdTree {
            nodes,
            root,
            bounds,
            len: points.len(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding box of the indexed points (`None` when empty).
    pub fn bounds(&self) -> Option<Aabb> {
        self.bounds
    }

    /// Tree depth (longest root-to-leaf path; 0 when empty).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: i32) -> usize {
            if i == NIL {
                0
            } else {
                let n = &nodes[i as usize];
                1 + depth_of(nodes, n.left).max(depth_of(nodes, n.right))
            }
        }
        depth_of(&self.nodes, self.root)
    }

    /// k-nearest-neighbor search.
    ///
    /// `points` must be the same slice the tree was built from. Under a
    /// [`StepBudget::Capped`] budget the search stops at the deadline and
    /// returns the best candidates found so far — the paper's
    /// deterministic termination.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `points.len()` differs from build time.
    pub fn knn(
        &self,
        points: &[Point3],
        query: Point3,
        k: usize,
        budget: StepBudget,
    ) -> (Vec<Neighbor>, TraversalStats) {
        self.knn_with_order(points, query, k, budget, TraversalOrder::NearestFirst)
    }

    /// k-nearest-neighbor search with an explicit child-visit order
    /// (see [`TraversalOrder`]). [`TraversalOrder::Fixed`] models the
    /// hardware traversal the paper's baselines and Sec. 3 profile use.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `points.len()` differs from build time.
    pub fn knn_with_order(
        &self,
        points: &[Point3],
        query: Point3,
        k: usize,
        budget: StepBudget,
        order: TraversalOrder,
    ) -> (Vec<Neighbor>, TraversalStats) {
        assert_eq!(points.len(), self.len, "point slice changed since build");
        let mut heap = KnnHeap::new(k);
        let mut stats = TraversalStats {
            steps: 0,
            completed: true,
        };
        let limit = budget.limit();
        if self.root != NIL {
            self.search_knn(
                points, self.root, query, &mut heap, &mut stats, limit, order,
            );
        }
        (heap.into_sorted(), stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn search_knn(
        &self,
        points: &[Point3],
        node_idx: i32,
        query: Point3,
        heap: &mut KnnHeap,
        stats: &mut TraversalStats,
        limit: u64,
        order: TraversalOrder,
    ) {
        if node_idx == NIL || !stats.completed {
            return;
        }
        if stats.steps >= limit {
            stats.completed = false;
            return;
        }
        stats.steps += 1;
        let node = &self.nodes[node_idx as usize];
        let p = points[node.point as usize];
        heap.offer(Neighbor::new(node.point, p.dist_sq(query)));
        let axis = node.axis as usize;
        let delta = query.axis(axis) - p.axis(axis);
        let (first, second, second_is_far_side) = match order {
            TraversalOrder::NearestFirst => {
                let (near, far) = if delta < 0.0 {
                    (node.left, node.right)
                } else {
                    (node.right, node.left)
                };
                (near, far, true)
            }
            // Fixed order: the far side may come first, in which case the
            // *second* child is the near side and must always be visited.
            // delta < 0 ⇒ query lies left ⇒ right child is the far side.
            TraversalOrder::Fixed => (node.left, node.right, delta < 0.0),
        };
        self.search_knn(points, first, query, heap, stats, limit, order);
        // The far side is prunable; the near side never is.
        let visit_second = !second_is_far_side || delta * delta < heap.worst();
        if stats.completed && visit_second {
            self.search_knn(points, second, query, heap, stats, limit, order);
        }
    }

    /// Range (radius) search: all points within `radius` of `query`,
    /// sorted by ascending distance.
    ///
    /// # Panics
    ///
    /// Panics if `points.len()` differs from build time or `radius` is
    /// negative.
    pub fn range(
        &self,
        points: &[Point3],
        query: Point3,
        radius: f32,
        budget: StepBudget,
    ) -> (Vec<Neighbor>, TraversalStats) {
        assert_eq!(points.len(), self.len, "point slice changed since build");
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        let mut stats = TraversalStats {
            steps: 0,
            completed: true,
        };
        let limit = budget.limit();
        let r_sq = radius * radius;
        if self.root != NIL {
            self.search_range(points, self.root, query, r_sq, &mut out, &mut stats, limit);
        }
        out.sort_by(|a, b| a.dist_sq.partial_cmp(&b.dist_sq).expect("NaN distance"));
        (out, stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn search_range(
        &self,
        points: &[Point3],
        node_idx: i32,
        query: Point3,
        r_sq: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut TraversalStats,
        limit: u64,
    ) {
        if node_idx == NIL || !stats.completed {
            return;
        }
        if stats.steps >= limit {
            stats.completed = false;
            return;
        }
        stats.steps += 1;
        let node = &self.nodes[node_idx as usize];
        let p = points[node.point as usize];
        let d = p.dist_sq(query);
        if d <= r_sq {
            out.push(Neighbor::new(node.point, d));
        }
        let axis = node.axis as usize;
        let delta = query.axis(axis) - p.axis(axis);
        let (near, far) = if delta < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        self.search_range(points, near, query, r_sq, out, stats, limit);
        if stats.completed && delta * delta <= r_sq {
            self.search_range(points, far, query, r_sq, out, stats, limit);
        }
    }

    /// Profiles the full-traversal step counts of `k`-NN for each query
    /// and returns them; used to derive deterministic-termination
    /// deadlines offline (Sec. 4.2 "based on offline profiling").
    pub fn profile_steps(&self, points: &[Point3], queries: &[Point3], k: usize) -> Vec<u64> {
        queries
            .iter()
            .map(|&q| self.knn(points, q, k, StepBudget::Unlimited).1.steps)
            .collect()
    }

    /// kNN search that also returns the indices of every point whose
    /// node the traversal visited, in visit order. Fig. 6 counts the
    /// distinct chunks these points fall in — "the chunks accessed
    /// during the search process".
    pub fn knn_trace(
        &self,
        points: &[Point3],
        query: Point3,
        k: usize,
        order: TraversalOrder,
    ) -> (Vec<Neighbor>, Vec<u32>) {
        assert_eq!(points.len(), self.len, "point slice changed since build");
        let mut heap = KnnHeap::new(k);
        let mut trace = Vec::new();
        if self.root != NIL {
            self.search_trace(points, self.root, query, &mut heap, &mut trace, order);
        }
        (heap.into_sorted(), trace)
    }

    fn search_trace(
        &self,
        points: &[Point3],
        node_idx: i32,
        query: Point3,
        heap: &mut KnnHeap,
        trace: &mut Vec<u32>,
        order: TraversalOrder,
    ) {
        if node_idx == NIL {
            return;
        }
        let node = &self.nodes[node_idx as usize];
        let p = points[node.point as usize];
        trace.push(node.point);
        heap.offer(Neighbor::new(node.point, p.dist_sq(query)));
        let axis = node.axis as usize;
        let delta = query.axis(axis) - p.axis(axis);
        let (first, second, second_is_far_side) = match order {
            TraversalOrder::NearestFirst => {
                let (near, far) = if delta < 0.0 {
                    (node.left, node.right)
                } else {
                    (node.right, node.left)
                };
                (near, far, true)
            }
            TraversalOrder::Fixed => (node.left, node.right, delta < 0.0),
        };
        self.search_trace(points, first, query, heap, trace, order);
        if !second_is_far_side || delta * delta < heap.worst() {
            self.search_trace(points, second, query, heap, trace, order);
        }
    }

    /// Like [`KdTree::profile_steps`] but with the hardware-style fixed
    /// traversal order — the profile of Sec. 3 (mean 8.4e3, std 6.8e3 on
    /// KITTI-scale clouds) uses this mode.
    pub fn profile_steps_hw(&self, points: &[Point3], queries: &[Point3], k: usize) -> Vec<u64> {
        queries
            .iter()
            .map(|&q| {
                self.knn_with_order(points, q, k, StepBudget::Unlimited, TraversalOrder::Fixed)
                    .1
                    .steps
            })
            .collect()
    }
}

/// Derives a capped budget as `fraction` of the mean full-traversal step
/// count (the paper sets the deadline to e.g. 25% of a full traversal).
///
/// # Panics
///
/// Panics if `fraction` is not positive or `full_steps` is empty.
pub fn deadline_from_profile(full_steps: &[u64], fraction: f64) -> StepBudget {
    assert!(fraction > 0.0, "fraction must be positive");
    assert!(!full_steps.is_empty(), "empty profile");
    let mean = full_steps.iter().sum::<u64>() as f64 / full_steps.len() as f64;
    StepBudget::Capped(((mean * fraction).round() as u64).max(1))
}

/// Derives a capped budget as the `q`-quantile of the profiled step
/// distribution — one of the "more exhaustive approaches to determine
/// the deadlines" the paper leaves as future work (Sec. 4.2). A
/// quantile deadline gives a direct completion-rate guarantee: at
/// `q = 0.9`, at least 90% of profiled queries finish untruncated.
///
/// # Panics
///
/// Panics if `q` is outside `(0, 1]` or `full_steps` is empty.
pub fn deadline_from_quantile(full_steps: &[u64], q: f64) -> StepBudget {
    assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
    assert!(!full_steps.is_empty(), "empty profile");
    let mut sorted = full_steps.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    StepBudget::Capped(sorted[idx].max(1))
}

fn build_recursive(
    points: &[Point3],
    indices: &mut [u32],
    nodes: &mut Vec<Node>,
    bounds: Aabb,
) -> i32 {
    if indices.is_empty() {
        return NIL;
    }
    // Split along the widest axis of the current cell — the layout that
    // hardware kd-tree builders (QuickNN, Tigris) use.
    let ext = bounds.extent();
    let axis = if ext.x >= ext.y && ext.x >= ext.z {
        0
    } else if ext.y >= ext.z {
        1
    } else {
        2
    };
    let mid = indices.len() / 2;
    indices.select_nth_unstable_by(mid, |&a, &b| {
        points[a as usize]
            .axis(axis)
            .partial_cmp(&points[b as usize].axis(axis))
            .expect("NaN coordinate")
    });
    let point = indices[mid];
    let split_at = points[point as usize].axis(axis);
    let slot = nodes.len();
    nodes.push(Node {
        point,
        axis: axis as u8,
        left: NIL,
        right: NIL,
    });
    let (lo_bb, hi_bb) = bounds.split(
        axis,
        split_at.clamp(bounds.min().axis(axis), bounds.max().axis(axis)),
    );
    let (lo, rest) = indices.split_at_mut(mid);
    let hi = &mut rest[1..];
    let left = build_recursive(points, lo, nodes, lo_bb);
    let right = build_recursive(points, hi, nodes, hi_bb);
    nodes[slot].left = left;
    nodes[slot].right = right;
    slot as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random_range(-10.0..10.0),
                    rng.random_range(-10.0..10.0),
                    rng.random_range(-10.0..10.0),
                )
            })
            .collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = random_points(500, 1);
        let tree = KdTree::build(&pts);
        for seed in 0..20u64 {
            let q = random_points(1, 100 + seed)[0];
            let (hits, stats) = tree.knn(&pts, q, 8, StepBudget::Unlimited);
            let expected = bruteforce::knn(&pts, q, 8);
            assert!(stats.completed);
            assert_eq!(hits.len(), 8);
            for (h, e) in hits.iter().zip(&expected) {
                assert!(
                    (h.dist_sq - e.dist_sq).abs() < 1e-5,
                    "distance mismatch {} vs {}",
                    h.dist_sq,
                    e.dist_sq
                );
            }
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let pts = random_points(400, 2);
        let tree = KdTree::build(&pts);
        let q = Point3::new(0.5, -0.5, 0.0);
        let (hits, stats) = tree.range(&pts, q, 3.0, StepBudget::Unlimited);
        let expected = bruteforce::range(&pts, q, 3.0);
        assert!(stats.completed);
        assert_eq!(hits.len(), expected.len());
        let mut a: Vec<u32> = hits.iter().map(|n| n.index).collect();
        let mut b: Vec<u32> = expected.iter().map(|n| n.index).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn capped_budget_terminates_and_reports() {
        let pts = random_points(2000, 3);
        let tree = KdTree::build(&pts);
        let q = Point3::new(0.0, 0.0, 0.0);
        let (_, full) = tree.knn(&pts, q, 32, StepBudget::Unlimited);
        let cap = full.steps / 4;
        let (hits, capped) = tree.knn(&pts, q, 32, StepBudget::Capped(cap));
        assert!(!capped.completed);
        assert_eq!(capped.steps, cap);
        // Best-so-far results are still returned.
        assert!(!hits.is_empty());
    }

    #[test]
    fn capped_results_approximate_exact() {
        // DT returns near-exact neighbors for most queries (the paper's
        // enabling observation): mean distance inflation stays small.
        let pts = random_points(3000, 4);
        let tree = KdTree::build(&pts);
        let queries = random_points(50, 5);
        let profile = tree.profile_steps(&pts, &queries, 8);
        let budget = deadline_from_profile(&profile, 0.25);
        let mut exact_sum = 0.0f64;
        let mut capped_sum = 0.0f64;
        for &q in &queries {
            let exact = tree.knn(&pts, q, 8, StepBudget::Unlimited).0;
            let capped = tree.knn(&pts, q, 8, budget).0;
            exact_sum += exact.iter().map(|n| n.dist_sq as f64).sum::<f64>();
            capped_sum += capped
                .iter()
                .take(exact.len())
                .map(|n| n.dist_sq as f64)
                .sum::<f64>();
        }
        assert!(
            capped_sum <= exact_sum * 2.0,
            "DT results degraded too far: {capped_sum} vs {exact_sum}"
        );
    }

    #[test]
    fn step_counts_vary_by_query() {
        // The non-determinism the paper targets: step counts depend on the
        // query (Sec. 3 reports std ≈ 0.8× mean).
        let pts = random_points(4000, 6);
        let tree = KdTree::build(&pts);
        let queries = random_points(100, 7);
        let steps = tree.profile_steps(&pts, &queries, 16);
        let min = *steps.iter().min().unwrap();
        let max = *steps.iter().max().unwrap();
        assert!(max > min, "expected variance in step counts");
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let pts: Vec<Point3> = vec![];
        let tree = KdTree::build(&pts);
        assert!(tree.is_empty());
        let (hits, stats) = tree.knn(&pts, Point3::ZERO, 3, StepBudget::Unlimited);
        assert!(hits.is_empty());
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn single_point_tree() {
        let pts = vec![Point3::splat(1.0)];
        let tree = KdTree::build(&pts);
        let (hits, _) = tree.knn(&pts, Point3::ZERO, 5, StepBudget::Unlimited);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].index, 0);
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![Point3::splat(2.0); 64];
        let tree = KdTree::build(&pts);
        let (hits, _) = tree.knn(&pts, Point3::splat(2.0), 10, StepBudget::Unlimited);
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|n| n.dist_sq == 0.0));
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        let pts = random_points(1024, 8);
        let tree = KdTree::build(&pts);
        // Median splits give depth ~log2(n); allow slack for ties.
        assert!(tree.depth() <= 16, "depth {} too deep", tree.depth());
    }

    #[test]
    fn deadline_from_profile_scales() {
        let profile = vec![100, 200, 300];
        match deadline_from_profile(&profile, 0.25) {
            StepBudget::Capped(n) => assert_eq!(n, 50),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deadline_from_quantile_guarantees_completion_rate() {
        let profile: Vec<u64> = (1..=100).collect();
        match deadline_from_quantile(&profile, 0.9) {
            StepBudget::Capped(n) => assert_eq!(n, 90),
            other => panic!("unexpected {other:?}"),
        }
        match deadline_from_quantile(&profile, 1.0) {
            StepBudget::Capped(n) => assert_eq!(n, 100),
            other => panic!("unexpected {other:?}"),
        }
        // At the q-quantile deadline, ≥ q of profiled queries complete.
        let pts = random_points(2000, 12);
        let tree = KdTree::build(&pts);
        let queries = random_points(60, 13);
        let steps = tree.profile_steps(&pts, &queries, 8);
        let budget = deadline_from_quantile(&steps, 0.9);
        let completed = queries
            .iter()
            .filter(|&&q| tree.knn(&pts, q, 8, budget).1.completed)
            .count();
        assert!(
            completed as f64 >= 0.9 * queries.len() as f64 - 1.0,
            "{completed}/{} completed",
            queries.len()
        );
    }

    #[test]
    fn fixed_order_same_results_more_steps() {
        let pts = random_points(5000, 10);
        let tree = KdTree::build(&pts);
        let queries = random_points(30, 11);
        let mut ordered_steps = 0u64;
        let mut fixed_steps = 0u64;
        for &q in &queries {
            let (a, sa) = tree.knn(&pts, q, 32, StepBudget::Unlimited);
            let (b, sb) =
                tree.knn_with_order(&pts, q, 32, StepBudget::Unlimited, TraversalOrder::Fixed);
            // Exactness is order-independent.
            let da: Vec<f32> = a.iter().map(|n| n.dist_sq).collect();
            let db: Vec<f32> = b.iter().map(|n| n.dist_sq).collect();
            assert_eq!(da, db);
            ordered_steps += sa.steps;
            fixed_steps += sb.steps;
        }
        assert!(
            fixed_steps > 2 * ordered_steps,
            "fixed {fixed_steps} vs ordered {ordered_steps}"
        );
    }

    #[test]
    fn range_with_zero_radius_finds_exact_point() {
        let pts = random_points(100, 9);
        let tree = KdTree::build(&pts);
        let (hits, _) = tree.range(&pts, pts[42], 0.0, StepBudget::Unlimited);
        assert!(hits.iter().any(|n| n.index == 42));
    }
}
