//! The conventional glob import for property tests.

pub use crate::{
    prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, BoxedStrategy,
    Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRunner,
};

/// Alias of the crate root, so `prop::collection::vec(...)` resolves.
pub use crate as prop;
