//! Collection strategies.

use crate::{Strategy, TestRunner};
use rand::RngExt;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A vector whose length is drawn from `len` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range in collection::vec");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let n = runner.rng().random_range(self.len.clone());
        (0..n).map(|_| self.element.sample(runner)).collect()
    }
}
