//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`, range and
//! tuple strategies, `collection::vec`, `prop_oneof!`, and the
//! [`proptest!`] macro with `#![proptest_config(...)]`,
//! `prop_assert*!`, and `prop_assume!`. Cases are drawn from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce exactly across runs. There is no shrinking: a failing case
//! panics with the drawn inputs' debug representation instead.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

pub mod collection;
pub mod prelude;

/// Harness configuration (the `#![proptest_config(...)]` payload).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to execute per test.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — draw a fresh one.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
        }
    }
}

/// Per-case result type the generated test bodies return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG driving value generation.
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// A deterministic runner: the seed is derived from the test name so
    /// each test draws an independent, reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRunner {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The underlying bit source.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A generator of values for one test argument.
///
/// Unlike real proptest there is no value tree / shrinking; `sample`
/// draws a fully-formed value.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a strategy from each value, then samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, runner: &mut TestRunner) -> T {
        (**self).sample(runner)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, runner: &mut TestRunner) -> S::Value {
        (**self).sample(runner)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.sample(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.inner.sample(runner)).sample(runner)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: std::fmt::Debug> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, runner: &mut TestRunner) -> T {
        let i = runner.rng().random_range(0..self.options.len());
        self.options[i].sample(runner)
    }
}

macro_rules! range_strategy {
    (float: $($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        })*
    };
    (int: $($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        })*
    };
}

range_strategy!(float: f32, f64);
range_strategy!(int: u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident)+))+) => {
        $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$n.sample(runner),)+)
            }
        })+
    };
}

tuple_strategy! {
    (0 S0)
    (0 S0 1 S1)
    (0 S0 1 S1 2 S2)
    (0 S0 1 S1 2 S2 3 S3)
    (0 S0 1 S1 2 S2 3 S3 4 S4)
    (0 S0 1 S1 2 S2 3 S3 4 S4 5 S5)
}

/// The `proptest!` macro: runs each contained `fn` as a `#[test]` over
/// `cases` random draws of its `arg in strategy` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($argpat:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut executed = 0u32;
            let mut rejected = 0u32;
            while executed < config.cases {
                let mut case_inputs: Vec<String> = Vec::new();
                let result: $crate::TestCaseResult = (|| {
                    $(
                        let __sampled = $crate::Strategy::sample(&($strategy), &mut runner);
                        case_inputs.push(format!(
                            concat!(stringify!($argpat), " = {:?}"),
                            &__sampled
                        ));
                        let $argpat = __sampled;
                    )*
                    let _: () = $body;
                    Ok(())
                })();
                match result {
                    Ok(()) => executed += 1,
                    Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "{}: too many prop_assume! rejections ({rejected})",
                                stringify!($name)
                            );
                        }
                    }
                    Err($crate::TestCaseError::Fail(reason)) => {
                        panic!(
                            "{} failed on case {}: {reason}\ninputs:\n  {}",
                            stringify!($name),
                            executed,
                            case_inputs.join("\n  ")
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Rejects the current case unless `cond` holds; a fresh case is drawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}
