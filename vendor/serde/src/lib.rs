//! Offline vendored stand-in for the `serde` crate.
//!
//! The container this workspace builds in has no network access to a
//! crates registry, so this crate reimplements the subset of serde the
//! workspace actually uses: the [`Serialize`]/[`Serializer`] data-model
//! traits (the full `ser` surface, including every compound serializer
//! trait), a marker [`Deserialize`] trait, and the two derive macros.
//! Any format crate written against real serde's `ser` API — such as the
//! counting serializer in `tests/api_contracts.rs` — compiles unchanged.
//!
//! Deserialization is intentionally a stub: nothing in the workspace
//! parses serialized data yet. When a real registry is available, this
//! path dependency can be swapped for crates.io `serde` without touching
//! any call site.

pub mod de;
pub mod ser;

pub use de::Deserialize;
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
