//! The serialization half of the serde data model.
//!
//! Trait shapes mirror real serde exactly (method names, arities, and
//! associated-type constraints), so downstream `Serializer`
//! implementations and derived impls are source-compatible.

use std::fmt::Display;

/// Error raised by a [`Serializer`].
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serialize `self` into the given serializer.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A format that can serialize any data structure supported by serde.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Type returned from [`Serializer::serialize_seq`].
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned from [`Serializer::serialize_tuple`].
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned from [`Serializer::serialize_tuple_struct`].
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned from [`Serializer::serialize_tuple_variant`].
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned from [`Serializer::serialize_map`].
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned from [`Serializer::serialize_struct`].
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned from [`Serializer::serialize_struct_variant`].
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Some(value)`.
    fn serialize_some<T>(self, value: &T) -> Result<Self::Ok, Self::Error>
    where
        T: ?Sized + Serialize;
    /// Serialize `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct like `struct Unit;`.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct like `struct Meters(f64);`.
    fn serialize_newtype_struct<T>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: ?Sized + Serialize;
    /// Serialize a newtype enum variant.
    fn serialize_newtype_variant<T>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: ?Sized + Serialize;
    /// Begin a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a fixed-length tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin a struct with named fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Returned from [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from [`Serializer::serialize_tuple`].
pub trait SerializeTuple {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    /// Finish the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from [`Serializer::serialize_tuple_struct`].
pub trait SerializeTupleStruct {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from [`Serializer::serialize_tuple_variant`].
pub trait SerializeTupleVariant {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one key.
    fn serialize_key<T>(&mut self, key: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    /// Serialize one value.
    fn serialize_value<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: ?Sized + Serialize;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! serialize_prim {
    ($($t:ty => $m:ident),* $(,)?) => {
        $(impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$m(*self)
            }
        })*
    };
}

serialize_prim!(
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for i128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, iter: I, len: usize) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        SerializeSeq::serialize_element(&mut seq, &item)?;
    }
    SerializeSeq::end(seq)
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tuple = serializer.serialize_tuple(N)?;
        for item in self.iter() {
            SerializeTuple::serialize_element(&mut tuple, item)?;
        }
        SerializeTuple::end(tuple)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize, H> Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

fn serialize_map_iter<'a, S, K, V, I>(serializer: S, iter: I, len: usize) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
{
    let mut map = serializer.serialize_map(Some(len))?;
    for (k, v) in iter {
        SerializeMap::serialize_key(&mut map, k)?;
        SerializeMap::serialize_value(&mut map, v)?;
    }
    SerializeMap::end(map)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.iter(), self.len())
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.iter(), self.len())
    }
}

impl<T> Serialize for std::marker::PhantomData<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit_struct("PhantomData")
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident)+))+) => {
        $(impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tuple = serializer.serialize_tuple(serialize_tuple!(@count $($t)+))?;
                $(SerializeTuple::serialize_element(&mut tuple, &self.$n)?;)+
                SerializeTuple::end(tuple)
            }
        })+
    };
    (@count $($t:ident)+) => { [$(serialize_tuple!(@unit $t)),+].len() };
    (@unit $t:ident) => { () };
}

serialize_tuple! {
    (0 T0)
    (0 T0 1 T1)
    (0 T0 1 T1 2 T2)
    (0 T0 1 T1 2 T2 3 T3)
    (0 T0 1 T1 2 T2 3 T3 4 T4)
    (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5)
}
