//! The deserialization half of the data model — stubbed.
//!
//! Nothing in the workspace deserializes yet (there is no format crate
//! in the offline dependency set), so [`Deserialize`] is a marker trait:
//! `#[derive(Deserialize)]` records the *intent* that a type roundtrips
//! and keeps call sites source-compatible with real serde, without
//! carrying a full `Deserializer` implementation that no code would
//! exercise. Grow this into the real trait when a format lands.

/// Marker for types that will deserialize once a format crate exists.
pub trait Deserialize<'de>: Sized {}

macro_rules! deserialize_prim {
    ($($t:ty),* $(,)?) => {
        $(impl<'de> Deserialize<'de> for $t {})*
    };
}

deserialize_prim!(
    bool,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    f32,
    f64,
    char,
    String,
    ()
);

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, H: Default> Deserialize<'de>
    for std::collections::HashMap<K, V, H>
{
}
impl<'de, T> Deserialize<'de> for std::marker::PhantomData<T> {}

macro_rules! deserialize_tuple {
    ($($($t:ident)+),+ $(,)?) => {
        $(impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {})+
    };
}

deserialize_tuple! {
    T0,
    T0 T1,
    T0 T1 T2,
    T0 T1 T2 T3,
    T0 T1 T2 T3 T4,
    T0 T1 T2 T3 T4 T5,
}
