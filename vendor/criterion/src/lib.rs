//! Offline vendored stand-in for the `criterion` crate.
//!
//! Provides the macro/API surface `benches/` uses — [`Criterion`],
//! `benchmark_group`, `bench_function`, [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`] — backed by a simple
//! wall-clock loop: warm up once, time a fixed batch, report the mean
//! per-iteration latency. No statistics, plots, or baselines; swap in
//! real criterion when a registry is available.

use std::time::{Duration, Instant};

/// The benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Opens a named group; benchmarks in it are prefixed `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!("{id:<40} {:>12.3?}/iter", bencher.mean);
        self.results.push((id, bencher.mean));
        self
    }

    /// Prints the collected results (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!("\n{} benchmarks run", self.results.len());
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.prefix, id.into());
        self.criterion.bench_function(id, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure.
pub struct Bencher {
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then size the batch so the measurement takes
        // roughly 50 ms (capped to keep `cargo bench` quick offline).
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

/// Re-export for call sites using `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}
