//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` with a
//! hand-rolled token parser — the container has no registry access, so
//! `syn`/`quote` are unavailable. Supports the shapes this workspace
//! derives on: non-generic structs with named fields, tuple structs, and
//! enums whose variants are unit, tuple, or struct-like. `#[serde(...)]`
//! field attributes are not supported (none are used in-tree).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed enum variant.
struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// The parsed derive input.
struct Input {
    name: String,
    kind: InputKind,
}

enum InputKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// Derives `serde::Serialize` by emitting calls into the `ser` data
/// model, exactly as real serde_derive would for attribute-free types.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.kind {
        InputKind::UnitStruct => format!("serializer.serialize_unit_struct(\"{name}\")"),
        InputKind::NamedStruct(fields) => {
            let mut s = String::new();
            s.push_str("use ::serde::ser::SerializeStruct as _;\n");
            s.push_str(&format!(
                "let mut state = serializer.serialize_struct(\"{name}\", {})?;\n",
                fields.len()
            ));
            for f in fields {
                s.push_str(&format!("state.serialize_field(\"{f}\", &self.{f})?;\n"));
            }
            s.push_str("state.end()");
            s
        }
        InputKind::TupleStruct(n) => {
            let mut s = String::new();
            s.push_str("use ::serde::ser::SerializeTupleStruct as _;\n");
            s.push_str(&format!(
                "let mut state = serializer.serialize_tuple_struct(\"{name}\", {n})?;\n"
            ));
            for i in 0..*n {
                s.push_str(&format!("state.serialize_field(&self.{i})?;\n"));
            }
            s.push_str("state.end()");
            s
        }
        InputKind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => s.push_str(&format!(
                        "{name}::{vname} => \
                         serializer.serialize_unit_variant(\"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        s.push_str(&format!("{name}::{vname}({}) => {{\n", binds.join(", ")));
                        if *n == 1 {
                            s.push_str(&format!(
                                "serializer.serialize_newtype_variant(\
                                 \"{name}\", {idx}u32, \"{vname}\", __f0)\n"
                            ));
                        } else {
                            s.push_str("use ::serde::ser::SerializeTupleVariant as _;\n");
                            s.push_str(&format!(
                                "let mut state = serializer.serialize_tuple_variant(\
                                 \"{name}\", {idx}u32, \"{vname}\", {n})?;\n"
                            ));
                            for b in &binds {
                                s.push_str(&format!("state.serialize_field({b})?;\n"));
                            }
                            s.push_str("state.end()\n");
                        }
                        s.push_str("}\n");
                    }
                    VariantFields::Named(fields) => {
                        s.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n",
                            fields.join(", ")
                        ));
                        s.push_str("use ::serde::ser::SerializeStructVariant as _;\n");
                        s.push_str(&format!(
                            "let mut state = serializer.serialize_struct_variant(\
                             \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            fields.len()
                        ));
                        for f in fields {
                            s.push_str(&format!("state.serialize_field(\"{f}\", {f})?;\n"));
                        }
                        s.push_str("state.end()\n}\n");
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(\n\
                 &self,\n\
                 serializer: __S,\n\
             ) -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
    .parse()
    .expect("derived Serialize impl must parse")
}

/// Derives the marker `serde::Deserialize` impl (see `serde::de`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{}}\n"
    )
    .parse()
    .expect("derived Deserialize impl must parse")
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let kind_kw = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types (deriving on `{name}`)");
    }
    let kind = match kind_kw.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                InputKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                InputKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => InputKind::UnitStruct,
            other => panic!("unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                InputKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body for `{name}`: {other:?}"),
        },
        "union" => panic!("vendored serde_derive does not support unions (deriving on `{name}`)"),
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    };
    Input { name, kind }
}

/// Advances past any leading `#[...]` attributes (incl. doc comments).
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        debug_assert!(matches!(tokens.get(*pos), Some(TokenTree::Group(_))));
        *pos += 1;
    }
}

/// Advances past `pub`, `pub(crate)`, `pub(in ...)`, or nothing.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Skips a type (or discriminant expression) up to a top-level comma,
/// tracking angle-bracket depth so `Map<K, V>` commas don't split.
fn skip_to_field_end(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        fields.push(expect_ident(&tokens, &mut pos));
        // Consume `:` then the type, up to the separating comma.
        pos += 1;
        skip_to_field_end(&tokens, &mut pos);
        pos += 1; // the comma (or one past the end)
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        count += 1;
        skip_to_field_end(&tokens, &mut pos);
        pos += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            skip_to_field_end(&tokens, &mut pos);
        }
        pos += 1; // the comma (or one past the end)
        variants.push(Variant { name, fields });
    }
    variants
}
