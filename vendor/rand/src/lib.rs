//! Offline vendored stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no registry access, so
//! this crate reimplements the surface the workspace uses: [`RngCore`],
//! [`SeedableRng`], the [`RngExt`] extension trait (`random_range`,
//! `random_bool`, `random`), [`rngs::SmallRng`] (xoshiro256++ seeded via
//! SplitMix64, matching upstream's algorithm choice), and
//! [`seq::SliceRandom::shuffle`]. All draws are deterministic functions
//! of the seed, which is what every caller in this workspace relies on.

pub mod rngs;

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG that can be reproducibly seeded.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with
    /// SplitMix64 (the upstream convention).
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// A uniform draw of the full value domain (`f32`/`f64` in [0, 1)).
    fn random<T: distr::StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias kept for call sites written against the `Rng` spelling.
pub use RngExt as Rng;

pub(crate) fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub(crate) fn unit_f32(bits: u64) -> f32 {
    // 24 high bits → [0, 1) with full single precision.
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

pub mod distr {
    //! Uniform sampling over ranges and the standard distribution.

    use super::{unit_f32, unit_f64, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce a uniform sample of `T`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Types with a canonical "standard" distribution.
    pub trait StandardUniform: Sized {
        /// Draws from the standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardUniform for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl StandardUniform for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
            unit_f32(rng.next_u64())
        }
    }

    impl StandardUniform for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardUniform for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl StandardUniform for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl SampleRange<f64> for Range<f64> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty range in random_range");
            self.start + (self.end - self.start) * unit_f64(rng.next_u64())
        }
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "empty range in random_range");
            self.start + (self.end - self.start) * unit_f32(rng.next_u64())
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),* $(,)?) => {
            $(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range in random_range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        // Modulo bias is negligible for the spans used in
                        // this workspace (all far below 2^32).
                        (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range in random_range");
                        let span = (hi as i128 - lo as i128 + 1) as u64;
                        (lo as i128 + (rng.next_u64() % span) as i128) as $t
                    }
                }
            )*
        };
    }

    int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{RngCore, RngExt};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}
