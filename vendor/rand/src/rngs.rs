//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++, the same
/// algorithm upstream `SmallRng` uses on 64-bit targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    fn from_state(mut seed_state: u64) -> Self {
        // SplitMix64 expansion, per the xoshiro reference implementation.
        let mut next = || {
            seed_state = seed_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed_state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // The all-zero state is a fixed point; remap it.
            return SmallRng::from_state(0);
        }
        SmallRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        SmallRng::from_state(state)
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngExt;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.random_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&g));
            let i = rng.random_range(5u32..17);
            assert!((5..17).contains(&i));
            let n = rng.random_range(0usize..=3);
            assert!(n <= 3);
        }
    }

    #[test]
    fn unit_draws_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let draws: Vec<f64> = (0..4096).map(|_| rng.random_range(0.0..1.0)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
        assert!(draws.iter().any(|&x| x < 0.05));
        assert!(draws.iter().any(|&x| x > 0.95));
    }

    #[test]
    fn bools_follow_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = SmallRng::seed_from_u64(11);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left the slice sorted"
        );
    }
}
