//! 3D Gaussian splatting with global vs hierarchical (chunked) depth
//! sorting — the paper's neural-rendering evaluation (Fig. 15).
//!
//! Run with:
//! ```text
//! cargo run --release --example splat_render
//! ```

use streamgrid_pointcloud::datasets::gaussians::{generate, SceneKind};
use streamgrid_pointcloud::{GridDims, Point3};
use streamgrid_splat::{psnr, render, Camera, SortMode};

fn main() {
    for (label, kind) in [
        ("Tanks&Temple-like", SceneKind::TanksAndTemples),
        ("DeepBlending-like", SceneKind::DeepBlending),
    ] {
        let scene = generate(kind, 8000, 5);
        let camera = Camera::look_at(
            scene.bounds.center() + Point3::new(0.0, -scene.bounds.extent().y * 1.2, 4.0),
            scene.bounds.center(),
            55.0,
            160,
            120,
        );
        let (reference, ref_stats) = render(&scene, &camera, SortMode::Global);
        // The paper splits 3DGS scenes into 80×60×75 chunks; we scale the
        // grid to the scene size.
        let dims = GridDims::new(16, 12, 15);
        let (chunked, stats) = render(&scene, &camera, SortMode::Chunked { dims });
        println!(
            "{label:<20} splats {:>6}  chunked-sort inversions {:>8}  PSNR vs global sort: {:.1} dB",
            ref_stats.splats_drawn,
            stats.order_inversions,
            psnr(&reference, &chunked)
        );
    }
    println!("\nHigh PSNR means chunked sorting is visually indistinguishable (paper: -0.1 dB).");
}
