//! Classification with integrated co-training (Sec. 4.3).
//!
//! Trains two mini-PointNet++ classifiers on synthetic ModelNet-like
//! shapes — one conventionally, one with compulsory splitting and
//! deterministic termination simulated in the forward pass — then
//! evaluates both under CS+DT inference. The co-trained model keeps its
//! accuracy; the conventional one degrades (Fig. 16's mechanism).
//!
//! Run with:
//! ```text
//! cargo run --release --example classification
//! ```

use streamgrid_nn::pointnet::ClsNet;
use streamgrid_nn::sampling::SearchMode;
use streamgrid_nn::train::{eval_classifier, train_classifier, ClsSample, TrainConfig};
use streamgrid_pointcloud::datasets::modelnet::{self, ModelNetConfig};

fn dataset(per_class: usize, classes: usize, points: usize, seed: u64) -> Vec<ClsSample> {
    let cfg = ModelNetConfig {
        classes: 10,
        points,
        noise: 0.01,
    };
    let mut out = Vec::new();
    for class in 0..classes as u32 {
        for i in 0..per_class {
            let s = modelnet::sample(&cfg, class, seed ^ ((class as u64) << 32) ^ i as u64);
            out.push((s.cloud.points().to_vec(), class));
        }
    }
    out
}

fn main() {
    let classes = 4;
    let train = dataset(10, classes, 160, 1);
    let test = dataset(6, classes, 160, 999);
    let streaming = SearchMode::paper_cls();

    println!("Training conventional model (exact grouping)...");
    let mut conventional = ClsNet::new(classes, 7);
    let t1 = train_classifier(
        &mut conventional,
        &train,
        &TrainConfig {
            epochs: 24,
            lr: 0.003,
            seed: 0,
            mode: SearchMode::Exact,
            batch: 8,
        },
    );

    println!("Training co-trained model (CS+DT simulated in the forward pass)...");
    let mut cotrained = ClsNet::new(classes, 7);
    let t2 = train_classifier(
        &mut cotrained,
        &train,
        &TrainConfig {
            epochs: 24,
            lr: 0.003,
            seed: 0,
            mode: streaming.clone(),
            batch: 8,
        },
    );

    let conv_exact = eval_classifier(&conventional, &test, &SearchMode::Exact);
    let conv_stream = eval_classifier(&conventional, &test, &streaming);
    let co_stream = eval_classifier(&cotrained, &test, &streaming);

    println!("\n{:<34} {:>9}", "configuration", "accuracy");
    println!(
        "{:<34} {:>8.1}%",
        "conventional, exact inference",
        conv_exact * 100.0
    );
    println!(
        "{:<34} {:>8.1}%",
        "conventional, CS+DT inference",
        conv_stream * 100.0
    );
    println!(
        "{:<34} {:>8.1}%",
        "co-trained,   CS+DT inference",
        co_stream * 100.0
    );
    println!(
        "\nco-training overhead: {:.1}x wall-clock (paper reports 3.1x)",
        t2.wall_seconds / t1.wall_seconds.max(1e-9)
    );
}
