//! Quickstart: compile a point-cloud pipeline through the full
//! StreamGrid flow (Fig. 1) and compare the Base design against CS+DT.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use streamgrid_core::apps::AppDomain;
use streamgrid_core::framework::StreamGrid;
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
use streamgrid_sim::EnergyModel;

fn main() {
    // A cloud of 4096 points × 3 attributes entering the PointNet++
    // classification pipeline.
    let elements = 4096 * 3;
    let energy = EnergyModel::default();

    println!("StreamGrid quickstart — classification pipeline, {elements} source elements\n");
    println!(
        "{:<10} {:>14} {:>12} {:>11} {:>9} {:>12} {:>13}",
        "variant", "on-chip bytes", "cycles", "mem stalls", "starved", "DRAM bytes", "energy (uJ)"
    );

    for (label, config) in [
        ("Base", StreamGridConfig::base()),
        ("CS", StreamGridConfig::cs(SplitConfig::paper_cls())),
        ("CS+DT", StreamGridConfig::cs_dt(SplitConfig::paper_cls())),
    ] {
        let framework = StreamGrid::new(config);
        let compiled = framework
            .compile(AppDomain::Classification, elements)
            .expect("pipeline compiles");
        let summary = compiled.summary();
        let report = compiled.simulate(&energy, 42);
        println!(
            "{:<10} {:>14} {:>12} {:>11} {:>9} {:>12} {:>13.2}",
            label,
            summary.onchip_bytes,
            report.cycles,
            report.stall_cycles,
            report.starved_cycles,
            report.dram_read_bytes + report.dram_write_bytes,
            report.energy.total_uj(),
        );
    }

    println!("\nCS+DT runs stall-free with the smallest buffers: that is the paper's claim.");
}
