//! Quickstart: compile a point-cloud pipeline through the full
//! StreamGrid flow (Fig. 1) and compare the Base design against CS+DT,
//! using one reusable session over the classification preset.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use streamgrid_core::apps::AppDomain;
use streamgrid_core::framework::{ExecuteOptions, StreamGrid};
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};

fn main() {
    // A cloud of 4096 points × 3 attributes entering the PointNet++
    // classification pipeline.
    let elements = 4096 * 3;

    println!("StreamGrid quickstart — classification pipeline, {elements} source elements\n");
    println!(
        "{:<10} {:>14} {:>12} {:>11} {:>9} {:>12} {:>13}",
        "variant", "on-chip bytes", "cycles", "mem stalls", "starved", "DRAM bytes", "energy (uJ)"
    );

    let options = ExecuteOptions {
        seed: 42,
        ..ExecuteOptions::for_domain(AppDomain::Classification)
    };
    // One session over the preset spec; each variant is a config switch
    // and the compile cache keeps every solved schedule around.
    let mut session =
        StreamGrid::new(StreamGridConfig::base()).session(AppDomain::Classification.spec());
    for (label, config) in [
        ("Base", StreamGridConfig::base()),
        ("CS", StreamGridConfig::cs(SplitConfig::paper_cls())),
        ("CS+DT", StreamGridConfig::cs_dt(SplitConfig::paper_cls())),
    ] {
        session.set_config(config);
        let report = session
            .run_with(elements, &options)
            .expect("pipeline compiles and runs");
        println!(
            "{:<10} {:>14} {:>12} {:>11} {:>9} {:>12} {:>13.2}",
            label,
            report.onchip_bytes(),
            report.run.cycles,
            report.run.stall_cycles,
            report.run.starved_cycles,
            report.dram_bytes(),
            report.total_uj(),
        );
    }

    println!("\nCS+DT runs stall-free with the smallest buffers: that is the paper's claim.");
}
