//! A pipeline StreamGrid never shipped: voxel downsample → normal
//! estimation → kNN feature grouping, described through the open
//! builder interface, registered next to the paper presets, and
//! executed CS+DT clean over a batch of cloud sizes through one
//! session.
//!
//! Run with:
//! ```text
//! cargo run --example custom_pipeline
//! ```

use streamgrid_core::framework::StreamGrid;
use streamgrid_core::pipeline::{CompileError, PipelineSpec};
use streamgrid_core::registry::PipelineRegistry;
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
use streamgrid_dataflow::Shape;

/// Voxel downsample (8:1 reduction) → surface-normal estimation (1×9
/// stencil over the voxel stream) → kNN grouping (global op) → feature
/// sink. Not one of the four Tbl. 2 apps — exactly the "any scenario"
/// case the Sec. 6 interface promises.
fn build_spec() -> Result<PipelineSpec, CompileError> {
    let mut b = PipelineSpec::builder("voxel_normals_knn");
    b.macs_per_element(96.0);
    let src = b.source("cloud_reader", Shape::new(1, 3), 1);
    // Keep one representative point per 8-point voxel.
    let voxel = b.reduction("voxel_downsample", Shape::new(1, 3), Shape::new(1, 3), 3, 8);
    // Normals from a 1×9 neighborhood of the voxel stream: xyz → xyz+n.
    let normals = b.stencil(
        "normal_estimation",
        Shape::new(1, 3),
        Shape::new(1, 6),
        5,
        (9, 1),
    );
    // kNN grouping over the normal-augmented stream (global-dependent).
    let knn = b.global_op(
        "knn_group",
        Shape::new(1, 6),
        1,
        Shape::new(4, 6),
        8,
        (1, 1),
        8,
    );
    let sink = b.sink("features", Shape::new(4, 6), 1);
    b.connect(src, voxel)
        .connect(voxel, normals)
        .connect(normals, knn)
        .connect(knn, sink);
    b.build()
}

fn main() {
    let spec = build_spec().expect("the custom pipeline validates");
    let mut registry = PipelineRegistry::with_paper_apps();
    registry
        .register(spec)
        .expect("the custom name is not taken");
    println!(
        "registry now holds {} pipelines: {}\n",
        registry.len(),
        registry.names().collect::<Vec<_>>().join(", ")
    );

    let spec = registry
        .resolve("voxel_normals_knn")
        .expect("just registered")
        .clone();
    let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)));
    let mut session = fw.session(spec);

    // Three cloud sizes over one session: distinct chunkings compile
    // once, the repeated size is a pure cache hit.
    let sizes = [4 * 2048 * 3, 4 * 4096 * 3, 4 * 8192 * 3, 4 * 4096 * 3];
    let reports = session.run_batch(&sizes).expect("CS+DT compiles and runs");

    println!(
        "{:>14} {:>14} {:>12} {:>11} {:>9}",
        "elements", "on-chip bytes", "cycles", "mem stalls", "starved"
    );
    for (&elements, report) in sizes.iter().zip(&reports) {
        assert!(report.is_clean(), "CS+DT must run stall- and overflow-free");
        println!(
            "{:>14} {:>14} {:>12} {:>11} {:>9}",
            elements,
            report.onchip_bytes(),
            report.run.cycles,
            report.run.stall_cycles,
            report.run.starved_cycles,
        );
    }
    println!(
        "\n{} executions, {} ILP solves: the session cache amortizes the compile.",
        sizes.len(),
        session.solver_invocations()
    );
    println!("a pipeline the paper never shipped runs CS+DT clean through the open builder API.");
}
