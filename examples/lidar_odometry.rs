//! LiDAR odometry (the A-LOAM registration pipeline of Tbl. 2) on a
//! synthetic KITTI-like sequence, with exact vs CS+DT correspondence
//! search.
//!
//! Run with:
//! ```text
//! cargo run --release --example lidar_odometry
//! ```

use streamgrid_pointcloud::datasets::lidar::{scan, trajectory, LidarConfig, Scene};
use streamgrid_registration::icp::{CorrespondenceMode, IcpConfig};
use streamgrid_registration::odometry::{run_odometry, trajectory_error, OdometryConfig};

fn main() {
    let scene = Scene::urban(11, 45.0, 18, 10);
    let lidar = LidarConfig {
        beams: 8,
        azimuth_steps: 480,
        ..LidarConfig::default()
    };
    let truth = trajectory(10, 0.4, 0.004);
    println!("Simulating {} LiDAR sweeps...", truth.len());
    let scans: Vec<_> = truth
        .iter()
        .enumerate()
        .map(|(i, &(p, y))| scan(&scene, &lidar, p, y, 100 + i as u64))
        .collect();

    for (label, mode) in [
        ("Base (exact kNN)", CorrespondenceMode::Exact),
        (
            "CS+DT (4 chunks, 25% deadline)",
            CorrespondenceMode::paper_registration(),
        ),
    ] {
        let config = OdometryConfig {
            icp: IcpConfig {
                mode: mode.clone(),
                ..IcpConfig::default()
            },
            ..OdometryConfig::default()
        };
        let poses = run_odometry(&scans, &config);
        let err = trajectory_error(&poses, &truth);
        println!(
            "{label:<32} translation {:>6.2}%  rotation {:>6.3} deg/frame  drift {:>6.2}%",
            err.translation_pct, err.rotation_deg, err.endpoint_drift_pct
        );
    }
    println!("\nCS+DT should sit within a small margin of the exact search (Fig. 14).");
}
