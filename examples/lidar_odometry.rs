//! LiDAR odometry (the A-LOAM registration pipeline of Tbl. 2) on a
//! synthetic KITTI-like sequence, streamed frame by frame.
//!
//! The sweep stream feeds two consumers:
//!
//! 1. **Accuracy** — exact vs CS+DT correspondence search through the
//!    odometry solver (Fig. 14's claim: CS+DT tracks the exact search).
//! 2. **Execution** — the same frames through
//!    `Session::stream` on the registration pipeline, where size
//!    bucketing amortizes the ILP solve across sweeps of drifting point
//!    counts.
//!
//! Run with:
//! ```text
//! cargo run --release --example lidar_odometry
//! ```

use streamgrid_core::apps::AppDomain;
use streamgrid_core::framework::StreamGrid;
use streamgrid_core::source::{DatasetSource, SizeBucketing, StreamOptions};
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
use streamgrid_pointcloud::datasets::lidar::{trajectory, LidarConfig, Scene};
use streamgrid_pointcloud::datasets::stream::LidarStream;
use streamgrid_registration::icp::{CorrespondenceMode, IcpConfig};
use streamgrid_registration::odometry::{run_odometry, trajectory_error, OdometryConfig};

fn main() {
    let truth = trajectory(10, 0.4, 0.004);
    let lidar = LidarConfig {
        beams: 8,
        azimuth_steps: 480,
        ..LidarConfig::default()
    };
    let stream = LidarStream::new(Scene::urban(11, 45.0, 18, 10), lidar, truth.clone(), 100);
    println!("Simulating {} LiDAR sweeps...", truth.len());
    let scans: Vec<_> = stream.collect();

    // 1. Odometry accuracy: exact vs CS+DT correspondence search.
    for (label, mode) in [
        ("Base (exact kNN)", CorrespondenceMode::Exact),
        (
            "CS+DT (4 chunks, 25% deadline)",
            CorrespondenceMode::paper_registration(),
        ),
    ] {
        let config = OdometryConfig {
            icp: IcpConfig {
                mode: mode.clone(),
                ..IcpConfig::default()
            },
            ..OdometryConfig::default()
        };
        let poses = run_odometry(&scans, &config);
        let err = trajectory_error(&poses, &truth);
        println!(
            "{label:<32} translation {:>6.2}%  rotation {:>6.3} deg/frame  drift {:>6.2}%",
            err.translation_pct, err.rotation_deg, err.endpoint_drift_pct
        );
    }
    println!("\nCS+DT should sit within a small margin of the exact search (Fig. 14).\n");

    // 2. Execution: the same sweeps through the compiled registration
    //    pipeline, exact vs quantized compile buckets.
    let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)));
    println!(
        "Streaming {} sweeps through the registration pipeline (CS+DT, 4 chunks):",
        scans.len()
    );
    for policy in [SizeBucketing::Exact, SizeBucketing::Quantize(1024)] {
        let mut session = fw.session(AppDomain::Registration.spec());
        let source = DatasetSource::new(scans.iter().map(|s| s.cloud.clone()));
        let report = session
            .stream(source, &StreamOptions::bucketed(policy))
            .expect("registration pipeline compiles and streams");
        assert!(report.all_clean(), "CS+DT streams must run clean");
        println!(
            "{:<18} {:>3} frames  {:>2} ILP solves  p50 {:>6} cyc  p95 {:>6} cyc  max {:>6} cyc  {:>8.2} uJ",
            format!("{policy:?}"),
            report.frame_count(),
            report.solver_invocations,
            report.p50_frame_cycles(),
            report.p95_frame_cycles(),
            report.max_frame_cycles(),
            report.total_uj()
        );
    }
    println!("\nQuantized buckets fold drifting sweep sizes into shared compiles (fewer solves).");

    // 3. Overlapped execution: the same stream with frame executions
    //    fanned across worker threads — the report is bit-identical to
    //    the sequential one (pinned below), only wall time may move.
    let options = StreamOptions::bucketed(SizeBucketing::Quantize(1024));
    let mut sequential_report = None;
    for workers in [1usize, 4] {
        let mut session = fw.session(AppDomain::Registration.spec());
        let source = DatasetSource::new(scans.iter().map(|s| s.cloud.clone()));
        let t0 = std::time::Instant::now();
        let report = session
            .stream(source, &options.with_workers(workers))
            .expect("registration pipeline compiles and streams");
        let wall = t0.elapsed();
        match &sequential_report {
            None => sequential_report = Some(report),
            Some(seq) => assert_eq!(&report, seq, "workers must never change results"),
        }
        println!(
            "{workers} worker(s): {:>6.2} ms wall for {} frames (bit-identical reports)",
            wall.as_secs_f64() * 1e3,
            scans.len()
        );
    }
}
