//! Regression and acceptance tests for the open pipeline API.
//!
//! Two pins from the redesign issue:
//! 1. the four Tbl. 2 presets, now expressed through the
//!    `PipelineBuilder`, must compile to byte-identical summaries vs the
//!    legacy hand-wired `dataflow_graph()` match (reconstructed verbatim
//!    below);
//! 2. `Session::run_batch` must perform exactly one ILP solve per
//!    distinct `(config, chunk_elements)` key, and its reports must
//!    equal fresh one-shot `execute()` calls.

use streamgrid_core::apps::AppDomain;
use streamgrid_core::framework::StreamGrid;
use streamgrid_core::pipeline::{CompileError, PipelineSpec};
use streamgrid_core::registry::PipelineRegistry;
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
use streamgrid_dataflow::{DataflowGraph, Shape};

/// The pre-redesign `dataflow_graph()` match, reproduced stage for stage
/// and edge for edge. If a preset ever drifts from this construction,
/// the summary comparison below catches it.
fn legacy_graph(domain: AppDomain) -> DataflowGraph {
    let mut g = DataflowGraph::new();
    match domain {
        AppDomain::Classification => {
            let src = g.source("reader", Shape::new(1, 3), 1);
            let scale = g.map("scale", Shape::new(1, 3), Shape::new(1, 3), 2);
            let rs = g.global_op(
                "range_search",
                Shape::new(1, 3),
                1,
                Shape::new(8, 3),
                8,
                (1, 1),
                8,
            );
            let mlp = g.map("group_mlp", Shape::new(1, 3), Shape::new(1, 16), 4);
            let pool = g.reduction("max_pool", Shape::new(1, 16), Shape::new(1, 16), 2, 8);
            let head = g.map("head_mlp", Shape::new(1, 16), Shape::new(1, 4), 6);
            let sink = g.sink("logits", Shape::new(1, 4), 1);
            g.connect(src, scale);
            g.connect(scale, rs);
            g.connect(rs, mlp);
            g.connect(mlp, pool);
            g.connect(pool, head);
            g.connect(head, sink);
        }
        AppDomain::Segmentation => {
            let src = g.source("reader", Shape::new(1, 3), 1);
            let scale = g.map("scale", Shape::new(1, 3), Shape::new(1, 3), 2);
            let rs = g.global_op(
                "range_search",
                Shape::new(1, 3),
                1,
                Shape::new(8, 3),
                8,
                (1, 1),
                8,
            );
            let mlp = g.map("group_mlp", Shape::new(1, 3), Shape::new(1, 16), 4);
            let pool = g.reduction("max_pool", Shape::new(1, 16), Shape::new(1, 16), 2, 8);
            let fp = g.stencil(
                "feature_prop",
                Shape::new(1, 16),
                Shape::new(8, 8),
                4,
                (3, 1),
            );
            let head = g.map("point_head", Shape::new(1, 8), Shape::new(1, 4), 4);
            let sink = g.sink("labels", Shape::new(1, 4), 1);
            g.connect(src, scale);
            g.connect(scale, rs);
            g.connect(rs, mlp);
            g.connect(mlp, pool);
            g.connect(pool, fp);
            g.connect(fp, head);
            g.connect(head, sink);
        }
        AppDomain::Registration => {
            let src = g.source("scan_reader", Shape::new(1, 3), 1);
            let curv = g.stencil("curvature", Shape::new(1, 3), Shape::new(1, 4), 4, (11, 1));
            let select = g.reduction("feature_select", Shape::new(1, 4), Shape::new(1, 4), 2, 8);
            let knn = g.global_op(
                "knn_search",
                Shape::new(1, 4),
                1,
                Shape::new(2, 4),
                4,
                (1, 1),
                8,
            );
            let residual = g.map("residual", Shape::new(1, 4), Shape::new(1, 8), 4);
            let gn = g.reduction("gauss_newton", Shape::new(1, 8), Shape::new(6, 8), 8, 64);
            let sink = g.sink("pose", Shape::new(6, 8), 1);
            g.connect(src, curv);
            g.connect(curv, select);
            g.connect(select, knn);
            g.connect(knn, residual);
            g.connect(residual, gn);
            g.connect(gn, sink);
        }
        AppDomain::NeuralRendering => {
            let src = g.source("gaussian_reader", Shape::new(1, 8), 1);
            let project = g.map("project", Shape::new(1, 8), Shape::new(1, 6), 4);
            let sort = g.global_op(
                "depth_sort",
                Shape::new(1, 6),
                1,
                Shape::new(1, 6),
                1,
                (1, 1),
                16,
            );
            let raster = g.stencil("rasterize", Shape::new(1, 6), Shape::new(1, 3), 8, (2, 1));
            let sink = g.sink("framebuffer", Shape::new(1, 3), 1);
            g.connect(src, project);
            g.connect(project, sort);
            g.connect(sort, raster);
            g.connect(raster, sink);
        }
    }
    g
}

#[test]
fn presets_match_legacy_graphs_byte_for_byte() {
    for domain in AppDomain::ALL {
        let preset = domain.spec();
        let legacy = PipelineSpec::from_graph("legacy", legacy_graph(domain)).unwrap();
        // Same stages, parameters, and wiring…
        assert_eq!(
            preset.graph(),
            legacy.graph(),
            "{domain:?}: builder preset drifted from the legacy construction"
        );
        // …and identical compiled summaries under every variant.
        for config in [
            StreamGridConfig::base(),
            StreamGridConfig::cs(SplitConfig::linear(4, 2)),
            StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)),
            StreamGridConfig::cs_dt(SplitConfig::paper_cls()),
        ] {
            let fw = StreamGrid::new(config);
            // 3600 divides every chunking in play (1, 4, and 9 chunks).
            let elements = 3600;
            let new = fw.compile_spec(&preset, elements).unwrap().summary();
            let old = fw.compile_spec(&legacy, elements).unwrap().summary();
            assert_eq!(
                (new.onchip_bytes, new.total_cycles, new.constraints),
                (old.onchip_bytes, old.total_cycles, old.constraints),
                "{domain:?} under {config:?}"
            );
        }
    }
}

#[test]
fn session_batch_solves_once_per_distinct_key() {
    for domain in AppDomain::ALL {
        let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)));
        let mut session = fw.session(domain.spec());
        // Four cloud sizes, three distinct chunkings (1200 repeats and
        // 1199 rounds up to the same 300-element chunks as 1200).
        let sizes = [4 * 300, 4 * 450, 4 * 600, 4 * 300 - 1];
        let batch = session.run_batch(&sizes).unwrap();
        assert_eq!(
            session.solver_invocations(),
            3,
            "{domain:?}: one ILP solve per distinct (config, chunk_elements) key"
        );
        // Batch reports equal fresh one-shot execute() calls.
        for (&total, report) in sizes.iter().zip(&batch) {
            let fresh = fw.execute(domain, total).unwrap();
            assert_eq!(report, &fresh, "{domain:?} at {total} elements");
        }
        // Re-running the whole batch performs zero additional solves.
        let again = session.run_batch(&sizes).unwrap();
        assert_eq!(batch, again);
        assert_eq!(session.solver_invocations(), 3, "{domain:?}");
    }
}

#[test]
fn parallel_batch_matches_sequential_and_oneshot() {
    let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)));
    let sizes = [4 * 300, 4 * 450, 4 * 600];
    let mut session = fw.session(AppDomain::NeuralRendering.spec());
    let parallel = session.run_batch_parallel(&sizes).unwrap();
    assert_eq!(session.solver_invocations(), 3);
    for (&total, report) in sizes.iter().zip(&parallel) {
        let fresh = fw.execute(AppDomain::NeuralRendering, total).unwrap();
        assert_eq!(report, &fresh, "parallel batch diverged at {total}");
    }
}

#[test]
fn builder_misuse_is_typed_not_panicking() {
    // Cycle.
    let mut b = PipelineSpec::builder("cycle");
    let src = b.source("src", Shape::new(1, 3), 1);
    let a = b.map("a", Shape::new(1, 3), Shape::new(1, 3), 1);
    let c = b.map("c", Shape::new(1, 3), Shape::new(1, 3), 1);
    let sink = b.sink("sink", Shape::new(1, 3), 1);
    b.connect(src, a)
        .connect(a, c)
        .connect(c, a)
        .connect(c, sink);
    assert!(matches!(b.build(), Err(CompileError::Graph(_))));

    // Shape mismatch between connected stages.
    let mut b = PipelineSpec::builder("mismatch");
    let src = b.source("src", Shape::new(1, 3), 1);
    let m = b.map("wide", Shape::new(1, 7), Shape::new(1, 7), 1);
    let sink = b.sink("sink", Shape::new(1, 7), 1);
    b.connect(src, m).connect(m, sink);
    assert!(matches!(b.build(), Err(CompileError::Graph(_))));

    // No source.
    let mut b = PipelineSpec::builder("no_source");
    let m = b.map("m", Shape::new(1, 3), Shape::new(1, 3), 1);
    let sink = b.sink("sink", Shape::new(1, 3), 1);
    b.connect(m, sink);
    assert_eq!(b.build().unwrap_err(), CompileError::NoSource);

    // No sink.
    let mut b = PipelineSpec::builder("no_sink");
    let src = b.source("src", Shape::new(1, 3), 1);
    let m = b.map("m", Shape::new(1, 3), Shape::new(1, 3), 1);
    b.connect(src, m);
    assert_eq!(b.build().unwrap_err(), CompileError::NoSink);

    // Duplicate registry names.
    let mut registry = PipelineRegistry::with_paper_apps();
    let clash = AppDomain::Classification.spec();
    assert_eq!(
        registry.register(clash).unwrap_err(),
        CompileError::DuplicateName("classification".into())
    );
}
