//! End-to-end integration tests: the Fig. 1 flow across all crates.
//!
//! The central invariant: an ILP schedule from the optimizer, executed
//! by the cycle-level simulator under deterministic termination, runs
//! with zero stalls and zero overflows, at the throughput the
//! multi-chunk plan predicts.

use streamgrid_core::apps::AppDomain;
use streamgrid_core::framework::{ExecuteOptions, StreamGrid};
use streamgrid_core::pipeline::PipelineSpec;
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
use streamgrid_dataflow::Shape;
use streamgrid_optimizer::{build, edge_infos, FormulationKind};
use streamgrid_sim::{evaluate, EnergyModel, Variant, VariantConfig};

#[test]
fn csdt_runs_clean_across_all_domains_and_chunkings() {
    for domain in AppDomain::ALL {
        for n in [2u32, 4, 8] {
            let config = StreamGridConfig::cs_dt(SplitConfig::linear(n, 2));
            let compiled = StreamGrid::new(config)
                .compile(domain, n as u64 * 600)
                .unwrap_or_else(|e| panic!("{domain:?} n={n}: {e}"));
            let report = compiled
                .execute(&ExecuteOptions {
                    seed: 3,
                    ..ExecuteOptions::for_domain(domain)
                })
                .run;
            assert_eq!(report.overflow_edge, None, "{domain:?} n={n} overflowed");
            assert_eq!(report.stall_cycles, 0, "{domain:?} n={n} stalled");
            for (i, (&peak, &cap)) in report
                .buffer_peaks
                .iter()
                .zip(&report.buffer_capacities)
                .enumerate()
            {
                assert!(peak <= cap, "{domain:?} n={n} edge {i}: {peak} > {cap}");
            }
        }
    }
}

#[test]
fn unified_execute_covers_every_domain() {
    // The single compile→execute→report entry point (Fig. 1 end to end):
    // one call must produce a consistent compile summary, run report,
    // and energy tally on every Tbl. 2 domain.
    for domain in AppDomain::ALL {
        let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)));
        let report = fw
            .execute(domain, 4 * 600)
            .unwrap_or_else(|e| panic!("{domain:?}: {e}"));
        assert!(report.is_clean(), "{domain:?}: CS+DT must run clean");
        assert!(report.run.cycles > 0, "{domain:?}");
        assert_eq!(report.energy, report.run.energy, "{domain:?}");
        assert!(report.total_uj() > 0.0, "{domain:?}");
        let compiled = fw.compile(domain, 4 * 600).unwrap();
        assert_eq!(report.compile, compiled.summary(), "{domain:?}");
    }
}

#[test]
fn simulated_throughput_matches_plan_across_domains() {
    for domain in AppDomain::ALL {
        let config = StreamGridConfig::cs_dt(SplitConfig::linear(4, 2));
        let compiled = StreamGrid::new(config).compile(domain, 4 * 600).unwrap();
        let report = compiled.execute(&ExecuteOptions::for_domain(domain)).run;
        let planned = compiled
            .plan
            .total_cycles(compiled.schedule.makespan, compiled.n_chunks);
        let drift = (report.cycles as f64 - planned as f64).abs() / planned as f64;
        assert!(
            drift < 0.05,
            "{domain:?}: simulated {} vs planned {planned} ({:.1}% drift)",
            report.cycles,
            drift * 100.0
        );
    }
}

#[test]
fn buffer_reduction_holds_for_every_domain() {
    // Fig. 17a's shape: CS+DT shrinks total line-buffer size
    // substantially on every app.
    for domain in AppDomain::ALL {
        let elements = 16 * 600;
        let base = StreamGrid::new(StreamGridConfig::base())
            .compile(domain, elements)
            .unwrap()
            .summary();
        let csdt = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(16, 2)))
            .compile(domain, elements)
            .unwrap()
            .summary();
        let reduction = 1.0 - csdt.onchip_bytes as f64 / base.onchip_bytes as f64;
        assert!(
            reduction > 0.5,
            "{domain:?}: only {:.0}% buffer reduction",
            reduction * 100.0
        );
    }
}

#[test]
fn pruned_and_full_formulations_agree_on_apps() {
    // The constraint-pruning ablation: identical optima, far fewer
    // constraints.
    // Classification only: the registration graph's full formulation
    // drives debug-mode branch & bound into a huge tree (its LP optima
    // sit fractionally between integer start times); the release-mode
    // ablation harness covers it at stride 1024 in milliseconds.
    {
        let domain = AppDomain::Classification;
        let graph = domain.spec().into_graph();
        let elements = 900u64;
        let edges = edge_infos(&graph, elements);
        let (_, asap) = streamgrid_optimizer::asap_schedule(&graph, &edges);
        let limit = asap + graph.node_count() as f64 + 1.0;
        let pruned = build(&graph, elements, FormulationKind::Pruned, limit);
        // Stride 4 keeps the solve debug-fast; the count comparison and
        // optimum equality are unaffected (stride-1 equality is covered
        // by the release-mode ablation harness).
        let full = build(&graph, elements, FormulationKind::Full { stride: 4 }, limit);
        let ps = pruned.model.solve().unwrap();
        let fs = full.model.solve().unwrap();
        assert!(
            (ps.objective - fs.objective).abs() <= 1.0 + ps.objective * 0.01,
            "{domain:?}: pruned {} vs full {}",
            ps.objective,
            fs.objective
        );
        assert!(
            full.constraint_count > 5 * pruned.constraint_count,
            "{domain:?}: {} vs {}",
            full.constraint_count,
            pruned.constraint_count
        );
    }
}

#[test]
fn variant_ordering_matches_paper() {
    // On-chip buffers: CS+DT ≤ CS < Base; stalls: CS+DT = 0 < others.
    let mut graph = AppDomain::Classification.spec().into_graph();
    StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)).apply(&mut graph);
    let cfg = VariantConfig::new(4 * 900);
    let energy = EnergyModel::default();
    let base = evaluate(&graph, Variant::Base, &cfg, &energy).unwrap();
    let cs = evaluate(&graph, Variant::Cs, &cfg, &energy).unwrap();
    let csdt = evaluate(&graph, Variant::CsDt, &cfg, &energy).unwrap();
    assert!(csdt.onchip_bytes <= cs.onchip_bytes);
    assert!(cs.onchip_bytes < base.onchip_bytes);
    assert_eq!(csdt.stall_cycles, 0);
    assert!(
        base.starved_cycles > 0,
        "non-determinism must cost Base bubbles"
    );
    assert!(csdt.energy.total_pj() < base.energy.total_pj());
}

#[test]
fn custom_pipeline_through_public_interface() {
    // A user-defined pipeline via the builder + session surface end to
    // end: the CS+DT transform sets the 2-chunk window on the global op,
    // the session compiles once and executes clean.
    let mut b = PipelineSpec::builder("custom_knn_stencil");
    let src = b.source("in", Shape::new(1, 3), 1);
    let knn = b.global_op("knn", Shape::new(1, 3), 1, Shape::new(4, 3), 8, (1, 1), 8);
    let sten = b.stencil("post", Shape::new(1, 3), Shape::new(1, 1), 2, (2, 1));
    let sink = b.sink("out", Shape::new(1, 1), 1);
    b.connect(src, knn).connect(knn, sten).connect(sten, sink);
    let spec = b.build().expect("a valid custom pipeline");

    let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)));
    let mut session = fw.session(spec);
    let elements = 768u64;
    let report = session.run(4 * elements).unwrap();
    assert_eq!(report.run.overflow_edge, None);
    assert_eq!(report.run.stall_cycles, 0);
    let compiled = session.compiled(4 * elements).unwrap();
    assert_eq!(compiled.chunk_elements, elements);
    // The kNN window holds 2 chunks of source data.
    assert!(compiled.schedule.buffer_sizes[0] >= 2 * elements);
    // The second cloud is a pure cache hit.
    session.run(4 * elements).unwrap();
    assert_eq!(session.solver_invocations(), 1);
}
