//! Property-based tests of the ILP solver: every reported optimum must be
//! feasible, and small integer programs must match exhaustive
//! enumeration.

use proptest::prelude::*;
use streamgrid_ilp::{CmpOp, LinExpr, Model, Sense, SolveStatus};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random 2-variable LPs: any optimal solution must satisfy every
    /// constraint and bound.
    #[test]
    fn lp_optimum_is_feasible(
        c1 in -5.0f64..5.0,
        c2 in -5.0f64..5.0,
        rows in prop::collection::vec(
            (-3.0f64..3.0, -3.0f64..3.0, -10.0f64..10.0, 0u8..2),
            1..6,
        ),
    ) {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 20.0, false);
        let y = m.add_var("y", 0.0, 20.0, false);
        for (i, (a, b, rhs, op)) in rows.iter().enumerate() {
            let expr = LinExpr::from(x) * *a + LinExpr::from(y) * *b;
            let op = if *op == 0 { CmpOp::Le } else { CmpOp::Ge };
            m.add_constraint(&format!("c{i}"), expr, op, *rhs);
        }
        m.set_objective(LinExpr::from(x) * c1 + LinExpr::from(y) * c2, Sense::Minimize);
        let sol = m.solve().unwrap();
        if sol.status == SolveStatus::Optimal {
            prop_assert!(m.check_feasible(&sol.values, 1e-5).is_ok(),
                "infeasible optimum {:?}", sol.values);
        }
    }

    /// Random 0/1 knapsacks up to 10 items: branch & bound must match
    /// exhaustive enumeration.
    #[test]
    fn knapsack_matches_enumeration(
        items in prop::collection::vec((1u32..20, 1u32..20), 1..10),
        cap_frac in 0.2f64..0.9,
    ) {
        let total_w: u32 = items.iter().map(|(w, _)| w).sum();
        let cap = (total_w as f64 * cap_frac).floor();
        let mut m = Model::new();
        let mut obj = LinExpr::new();
        let mut weight = LinExpr::new();
        let vars: Vec<_> = items
            .iter()
            .enumerate()
            .map(|(i, (w, p))| {
                let v = m.add_var(&format!("x{i}"), 0.0, 1.0, true);
                obj.add_term(v, *p as f64);
                weight.add_term(v, *w as f64);
                v
            })
            .collect();
        m.add_constraint("cap", weight, CmpOp::Le, cap);
        m.set_objective(obj, Sense::Maximize);
        let sol = m.solve().unwrap();
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        prop_assert!(m.check_feasible(&sol.values, 1e-6).is_ok());
        // Exhaustive check.
        let n = items.len();
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let (mut w, mut p) = (0.0f64, 0.0f64);
            for (i, (wi, pi)) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    w += *wi as f64;
                    p += *pi as f64;
                }
            }
            if w <= cap {
                best = best.max(p);
            }
        }
        prop_assert!((sol.objective - best).abs() < 1e-6,
            "solver {} vs enumeration {best}", sol.objective);
        let _ = vars;
    }

    /// Integer difference systems (the line-buffer ILP's structure):
    /// x_j - x_i >= d. The solved times must satisfy every difference.
    #[test]
    fn difference_constraints_satisfied(
        deltas in prop::collection::vec(0.0f64..50.0, 2..8),
    ) {
        let mut m = Model::new();
        let vars: Vec<_> = (0..deltas.len() + 1)
            .map(|i| m.add_var(&format!("t{i}"), 0.0, f64::INFINITY, true))
            .collect();
        let mut obj = LinExpr::new();
        for (i, d) in deltas.iter().enumerate() {
            m.add_constraint(
                &format!("d{i}"),
                LinExpr::from(vars[i + 1]) - LinExpr::from(vars[i]),
                CmpOp::Ge,
                *d,
            );
            obj.add_term(vars[i + 1], 1.0);
        }
        m.set_objective(obj, Sense::Minimize);
        let sol = m.solve().unwrap();
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        // Chain lower bounds must hold with integer rounding.
        let mut acc = 0.0f64;
        for (i, d) in deltas.iter().enumerate() {
            acc += d;
            prop_assert!(sol.values[i + 1] >= acc.floor() - 1e-6);
        }
        prop_assert!(m.check_feasible(&sol.values, 1e-6).is_ok());
    }
}
