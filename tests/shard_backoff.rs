//! Oversubscription coverage for the sharded engine's tiered backoff.
//!
//! PR 6's spin-then-yield wait loops made `Sharded(8)` on a 1-core host
//! ~345× slower than `Sharded(1)` (N−1 busy-yielding threads
//! round-robining the scheduler). The park tier bounds that: blocked
//! shards sleep on a condvar and are woken exactly when their progress
//! target lands, so an oversubscribed run costs hand-offs, not thrash.
//! These tests pin both halves of the fix:
//!
//! - **Stress**: an *unclamped* `Sharded(8)` on a dense registration
//!   design must finish inside a generous wall-clock budget relative to
//!   the oracle — the budget is loose enough for any CI host but far
//!   below what scheduler thrash would cost.
//! - **Policy**: the default clamp folds a request that oversubscribes
//!   the host down to the core count, recording the verbatim request on
//!   the report.
//! - **Bit-identity under forced parking**: a degenerate `RingParams`
//!   (two-slot rings, zero spin/yield budget) routes every wait through
//!   the park/wake handshake; reports must still match the oracle bit
//!   for bit across shard counts, truncated budgets, and variable
//!   latency.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use streamgrid_core::apps::AppDomain;
use streamgrid_core::framework::{ExecMode, ExecuteOptions, StreamGrid};
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
use streamgrid_dataflow::{DataflowGraph, Shape};
use streamgrid_optimizer::{edge_infos, optimize, plan_multi_chunk, OptimizeConfig};
use streamgrid_sim::{
    run_with, EnergyModel, EngineConfig, EngineMode, GlobalLatencyModel, RingParams,
};

/// Ring/backoff parameters that force every cross-shard wait to the
/// park tier immediately: no spins, no yields, and two-slot rings so
/// flow control bites constantly.
const FORCED_PARK: RingParams = RingParams {
    ring_len: 2,
    spin_limit: 0,
    yield_limit: 0,
};

/// Unclamped `Sharded(8)` on a dense registration design point must
/// complete inside a generous wall-clock budget and reproduce the
/// oracle bit for bit. The budget (`oracle × 25 + 5 s`) is far above
/// park/wake hand-off cost on any host, and far below what the old
/// spin-then-yield thrash (~345×) would spend.
#[test]
fn oversubscribed_sharded_run_completes_within_wall_budget() {
    let spec = AppDomain::Registration.spec();
    let n_chunks = 64u64;
    let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(
        n_chunks as u32,
        2,
    )));
    let compiled = fw
        .compile_spec(&spec, n_chunks * 300)
        .expect("registration compiles");

    let t0 = Instant::now();
    let oracle =
        compiled.execute(&ExecuteOptions::for_spec(&spec).with_exec_mode(ExecMode::CycleAccurate));
    let oracle_wall = t0.elapsed();

    let t1 = Instant::now();
    let sharded = compiled.execute(
        &ExecuteOptions::for_spec(&spec)
            .with_exec_mode(ExecMode::Sharded(8))
            .with_shard_clamp(false),
    );
    let sharded_wall = t1.elapsed();

    assert_eq!(sharded.exec_mode, EngineMode::Sharded(8));
    assert_eq!(sharded.exec_requested, ExecMode::Sharded(8));
    assert_eq!(oracle.run, sharded.run, "oversubscribed run diverged");
    assert!(oracle.is_clean() && sharded.is_clean());

    let budget = oracle_wall * 25 + Duration::from_secs(5);
    assert!(
        sharded_wall <= budget,
        "Sharded(8) took {sharded_wall:?} against a budget of {budget:?} \
         (oracle: {oracle_wall:?}) — the backoff tiers are not bounding \
         oversubscription"
    );
}

/// The default clamp folds an oversubscribing request down to the host
/// core count, keeps the verbatim request on the report, and stays bit
/// identical (shard-count invariance makes the merge a pure degrade).
#[test]
fn shard_clamp_records_request_and_effective_engine() {
    let spec = AppDomain::Registration.spec();
    let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(16, 2)));
    let compiled = fw.compile_spec(&spec, 16 * 300).expect("compiles");
    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1) as u32;

    let oracle =
        compiled.execute(&ExecuteOptions::for_spec(&spec).with_exec_mode(ExecMode::CycleAccurate));
    let clamped =
        compiled.execute(&ExecuteOptions::for_spec(&spec).with_exec_mode(ExecMode::Sharded(64)));
    assert_eq!(clamped.exec_requested, ExecMode::Sharded(64));
    match clamped.exec_mode {
        EngineMode::Sharded(n) => assert_eq!(n, 64.min(host)),
        other => panic!("clamped request resolved to {other:?}"),
    }
    assert_eq!(oracle.run, clamped.run, "clamped run diverged");

    // A request that fits the host is honored verbatim even with the
    // clamp on (`min(n, host) = n`), so clamping never *removes*
    // parallelism the host can actually supply.
    if host >= 2 {
        let fitting =
            compiled.execute(&ExecuteOptions::for_spec(&spec).with_exec_mode(ExecMode::Sharded(2)));
        assert_eq!(fitting.exec_mode, EngineMode::Sharded(2));
        assert_eq!(oracle.run, fitting.run);
    }
}

/// Forcing every wait through the park tier on a real preset must count
/// parks and wakes in the report without perturbing any simulated
/// field (the manual `RunReport` equality excludes backoff).
#[test]
fn forced_park_counters_surface_in_execution_report() {
    let spec = AppDomain::Registration.spec();
    let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(16, 2)));
    let compiled = fw.compile_spec(&spec, 16 * 300).expect("compiles");
    let oracle =
        compiled.execute(&ExecuteOptions::for_spec(&spec).with_exec_mode(ExecMode::CycleAccurate));
    let parked = compiled.execute(
        &ExecuteOptions::for_spec(&spec)
            .with_exec_mode(ExecMode::Sharded(4))
            .with_shard_clamp(false)
            .with_ring(FORCED_PARK),
    );
    assert_eq!(oracle.run, parked.run);
    assert_eq!(
        (oracle.run.backoff.spins, oracle.run.backoff.parks),
        (0, 0),
        "sequential engines never touch the backoff tiers"
    );
    assert!(
        parked.run.backoff.parks > 0,
        "zero spin/yield budget with two-slot rings must park: {:?}",
        parked.run.backoff
    );
    assert!(
        parked.run.backoff.wakes > 0,
        "parked shards can only resume via publisher wakes: {:?}",
        parked.run.backoff
    );
}

/// A small parameterized chain (map → stencil → reduction → global) for
/// the property sweep: enough stage variety that every cut point lands
/// on a different edge kind.
fn chain(depths: &[u32; 4], reuse: u32, factor: u32, freq: u32) -> DataflowGraph {
    let mut g = DataflowGraph::new();
    let attrs = 2u32;
    let src = g.source("src", Shape::new(1, attrs), 1);
    let m = g.map("map", Shape::new(1, attrs), Shape::new(2, attrs), depths[0]);
    let st = g.stencil(
        "stencil",
        Shape::new(1, attrs),
        Shape::new(1, attrs),
        depths[1],
        (reuse, 1),
    );
    let rd = g.reduction(
        "reduce",
        Shape::new(1, attrs),
        Shape::new(1, attrs),
        depths[2],
        factor,
    );
    let gl = g.global_op(
        "global",
        Shape::new(1, attrs),
        1,
        Shape::new(2, attrs),
        freq,
        (1, 1),
        depths[3],
    );
    let sink = g.sink("sink", Shape::new(1, attrs), 1);
    g.connect(src, m);
    g.connect(m, st);
    g.connect(st, rd);
    g.connect(rd, gl);
    g.connect(gl, sink);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every wait routed through the park/wake handshake (zero
    /// spin/yield budget, two-slot rings): reports stay bit-identical
    /// to the oracle across shard counts, under variable latency, and
    /// under truncated cycle budgets.
    #[test]
    fn forced_park_engine_is_bit_identical_to_oracle(
        depths in prop::collection::vec(0u32..6, 4..5),
        reuse in 2u32..5,
        factor in 2u32..6,
        freq in 1u32..6,
        n_chunks in 2u64..24,
        cv in prop_oneof![Just(0.0f64), 0.2f64..1.0],
        seed in 0u64..1024,
        budget_divisor in 1u64..5,
    ) {
        let g = chain(&[depths[0], depths[1], depths[2], depths[3]], reuse, factor, freq);
        prop_assume!(g.validate().is_ok());
        let elements = 240u64;
        let edges = edge_infos(&g, elements);
        prop_assume!(edges.iter().all(|e| e.volume > 0));
        let schedule = match optimize(&g, &OptimizeConfig::new(elements)) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::fail(format!("optimize failed: {e}"))),
        };
        let plan = plan_multi_chunk(&g, &edges);
        let energy = EnergyModel::default();
        let latency = if cv == 0.0 {
            GlobalLatencyModel::Deterministic
        } else {
            GlobalLatencyModel::Variable { cv, seed }
        };
        let full = EngineConfig {
            n_chunks,
            global_latency: latency,
            ring: FORCED_PARK,
            ..EngineConfig::default()
        };
        let oracle = run_with(&g, &edges, &schedule, &plan, &energy, &full,
                              EngineMode::CycleAccurate);
        for shards in [1u32, 2, 4, 8] {
            let sharded = run_with(&g, &edges, &schedule, &plan, &energy, &full,
                                   EngineMode::Sharded(shards));
            prop_assert_eq!(&oracle, &sharded,
                            "forced-park divergence at {} shards", shards);
        }

        let truncated = EngineConfig {
            max_cycles: (oracle.cycles / budget_divisor).max(1),
            ..full
        };
        let oracle_t = run_with(&g, &edges, &schedule, &plan, &energy, &truncated,
                                EngineMode::CycleAccurate);
        for shards in [2u32, 8] {
            let sharded_t = run_with(&g, &edges, &schedule, &plan, &energy, &truncated,
                                     EngineMode::Sharded(shards));
            prop_assert_eq!(&oracle_t, &sharded_t,
                            "truncated forced-park divergence at {} shards", shards);
        }
    }
}
