//! Property tests on cache-aware streaming: for any random frame-size
//! sequence, `StreamReport.solver_invocations` equals the number of
//! *distinct buckets* the bucketing policy produces, and policies only
//! change scheduling granularity — never frame counts or cleanliness.
//!
//! The equality holds exactly when distinct buckets also map to
//! distinct `(config, chunk_elements)` compile keys. The session keys
//! on `chunk_elements = ceil(bucket / n_chunks)`, so two buckets that
//! differ by less than `n_chunks` can share a key. The generator
//! therefore emits sizes that are multiples of `n_chunks` (= 4, a
//! power of two) and uses a `Quantize` step that is itself a multiple
//! of `n_chunks`: distinct Exact sizes, distinct Pow2 buckets (all
//! ≥ n_chunks), and distinct Quantize buckets then always differ by at
//! least `n_chunks`, so bucket-distinctness and key-distinctness
//! coincide.

use std::collections::HashSet;

use proptest::prelude::*;
use streamgrid_core::apps::AppDomain;
use streamgrid_core::framework::StreamGrid;
use streamgrid_core::source::{ReplaySource, SizeBucketing, StreamOptions, StreamReport};
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};

const N_CHUNKS: u64 = 4;

fn stream_sizes(sizes: &[u64], policy: SizeBucketing) -> StreamReport {
    let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(
        N_CHUNKS as u32,
        2,
    )));
    let mut session = fw.session(AppDomain::Classification.spec());
    session
        .stream(ReplaySource::new(sizes), &StreamOptions::bucketed(policy))
        .expect("CS+DT compiles and streams for any positive size")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    #[test]
    fn solver_invocations_equal_distinct_buckets(
        raw in prop::collection::vec(1u64..41, 1..10)
    ) {
        // Multiples of N_CHUNKS in [120, 4800]: see the module docs for
        // why this keeps buckets and compile keys in bijection.
        let sizes: Vec<u64> = raw.iter().map(|s| s * N_CHUNKS * 30).collect();
        for policy in [
            SizeBucketing::Exact,
            SizeBucketing::Pow2,
            SizeBucketing::Quantize(8 * N_CHUNKS * 30),
        ] {
            let report = stream_sizes(&sizes, policy);
            let distinct: HashSet<u64> = sizes.iter().map(|&e| policy.bucket(e)).collect();
            prop_assert_eq!(
                report.solver_invocations,
                distinct.len() as u64,
                "{:?} over {:?}", policy, sizes
            );
            prop_assert_eq!(report.frame_count(), sizes.len() as u64);
            // Buckets only ever round up.
            for frame in &report.frames {
                prop_assert!(frame.scheduled_elements >= frame.frame.elements);
            }
        }
    }

    #[test]
    fn exact_and_quantize_agree_on_frames_and_cleanliness(
        raw in prop::collection::vec(1u64..41, 1..8)
    ) {
        let sizes: Vec<u64> = raw.iter().map(|s| s * N_CHUNKS * 30).collect();
        let exact = stream_sizes(&sizes, SizeBucketing::Exact);
        let quantized = stream_sizes(&sizes, SizeBucketing::Quantize(1024));
        prop_assert_eq!(exact.frame_count(), quantized.frame_count());
        for (e, q) in exact.frames.iter().zip(&quantized.frames) {
            prop_assert_eq!(e.frame, q.frame, "sources must agree on the frames themselves");
            prop_assert_eq!(
                e.report.is_clean(),
                q.report.is_clean(),
                "bucketing changed cleanliness on frame {}", e.frame.id
            );
        }
        // Under CS+DT both must in fact be clean, and quantizing can
        // only reduce the solve count.
        prop_assert!(exact.all_clean() && quantized.all_clean());
        prop_assert!(quantized.solver_invocations <= exact.solver_invocations);
    }
}
