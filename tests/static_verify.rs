//! The static-verification contract, end to end: every schedule the
//! compile path emits carries an accepting occupancy certificate whose
//! per-edge peaks genuinely bound what the engines observe; the linter
//! stays silent on the paper presets and speaks up (through reports or
//! `deny_lints`) on designs it should flag; and the certifier is not a
//! rubber stamp — sabotaged schedules (shrunk buffers, perturbed rates)
//! are rejected with a pinned, machine-checkable rendering.

use proptest::prelude::*;
use streamgrid_core::framework::{ExecMode, ExecuteOptions, StreamGrid};
use streamgrid_core::registry::PipelineRegistry;
use streamgrid_core::source::{ReplaySource, SizeBucketing, StreamOptions};
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
use streamgrid_dataflow::{DataflowGraph, Rate, Shape};
use streamgrid_optimizer::{cert_edges, certify_schedule, edge_infos, optimize, OptimizeConfig};
use streamgrid_verify::certify;

/// Every registry preset, across the same chunk-count matrix the engine
/// equivalence suite sweeps: the compiled schedule's full-lattice
/// certificate accepts, the linter is clean, and the certified per-edge
/// peaks upper-bound the occupancies the oracle actually observes.
#[test]
fn presets_certify_and_bound_observed_occupancy() {
    let registry = PipelineRegistry::with_paper_apps();
    for spec in registry.specs() {
        for n_chunks in [1u64, 2, 4, 9, 16, 48] {
            let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(
                n_chunks as u32,
                2,
            )));
            let compiled = fw
                .compile_spec(spec, n_chunks * 300)
                .expect("preset compiles");
            assert!(
                compiled.lints.is_empty(),
                "{} at {} chunks: unexpected lints {:?}",
                spec.name(),
                n_chunks,
                compiled.lints
            );
            let cert = compiled.certify();
            assert!(
                cert.accepted(),
                "{} at {} chunks: compile-path schedule rejected:\n{}",
                spec.name(),
                n_chunks,
                cert.render()
            );
            let report = compiled
                .execute(&ExecuteOptions::for_spec(spec).with_exec_mode(ExecMode::CycleAccurate));
            assert!(report.lints.is_clean());
            assert_eq!(report.run.buffer_peaks.len(), cert.edges.len());
            for (edge, observed) in cert.edges.iter().zip(&report.run.buffer_peaks) {
                assert!(
                    *observed <= edge.certified_peak,
                    "{} at {} chunks, edge {}: observed peak {} exceeds certified {}",
                    spec.name(),
                    n_chunks,
                    edge.edge,
                    observed,
                    edge.certified_peak
                );
            }
        }
    }
}

/// Streams surface findings the compiler cannot see: a frame far below
/// its scheduled bucket is a bucketing blowup (SG003) at the stream
/// level even though each compiled design lints clean.
#[test]
fn stream_reports_surface_bucketing_blowup() {
    let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)));
    let mut session = fw.session(streamgrid_core::apps::AppDomain::Classification.spec());
    // 600-element frames rounded up to 2048-element schedules: more
    // than 1.5x over-provisioned, so SG003 must fire per frame.
    let report = session
        .stream(
            ReplaySource::new(&[600, 600]),
            &StreamOptions::bucketed(SizeBucketing::Quantize(2048)),
        )
        .expect("stream compiles and runs");
    assert_eq!(report.lint_warning_count(), 2);
    let messages = report.lint_messages();
    assert!(
        messages.iter().any(|m| m.contains("SG003")),
        "expected an SG003 finding, got {messages:?}"
    );

    // A tight bucket scheduled at the frame size raises nothing.
    let clean = session
        .stream(
            ReplaySource::new(&[600, 600]),
            &StreamOptions::bucketed(SizeBucketing::Exact),
        )
        .expect("stream compiles and runs");
    assert_eq!(clean.lint_warning_count(), 0);
    assert!(clean.lint_messages().is_empty());
}

/// A deterministic sabotage: slow one consumer's drain rate after the
/// fact and re-certify against the original buffer bounds. The edge now
/// accumulates far beyond its provisioned capacity, and the certifier
/// must say so.
#[test]
fn perturbed_rate_rejects_against_original_bounds() {
    let mut g = DataflowGraph::new();
    let src = g.source("src", Shape::new(1, 2), 1);
    let map = g.map("map", Shape::new(1, 2), Shape::new(1, 2), 2);
    let sink = g.sink("sink", Shape::new(1, 2), 1);
    g.connect(src, map);
    g.connect(map, sink);
    let edges = edge_infos(&g, 300);
    let schedule = optimize(&g, &OptimizeConfig::new(300)).expect("optimizes");
    let honest = certify_schedule(&edges, &schedule, 1, 1);
    assert!(honest.accepted(), "{}", honest.render());

    let mut sabotaged = cert_edges(&edges);
    let tau = sabotaged[0].tau_in;
    sabotaged[0].tau_in = Rate::new(tau.num(), tau.den() * 2);
    let cert = certify(
        &sabotaged,
        &schedule.start_cycles,
        &schedule.buffer_sizes,
        1,
        1,
    );
    assert!(
        !cert.accepted(),
        "halving a drain rate must blow the original bound:\n{}",
        cert.render()
    );
    assert_eq!(cert.first_violation().expect("violation").edge, 0);
}

/// Snapshot: the rejected certificate's rendering is a stable,
/// machine-checkable artifact — tooling greps it, so its exact shape is
/// pinned here.
#[test]
fn rejected_certificate_render_snapshot() {
    use streamgrid_verify::CertEdge;
    let edge = CertEdge {
        producer: 0,
        consumer: 1,
        tau_out: Rate::new(1, 1),
        tau_in: Rate::new(1, 1),
        volume: 10,
        depth: 0,
        global_consumer: false,
        window_chunks: 1,
    };
    let cert = certify(&[edge], &[0, 0], &[0], 1, 1);
    assert_eq!(
        cert.render(),
        "certificate REJECTED: 1 edges, 1 chunks, II=1\n  \
         edge 0 (0 -> 1): peak 1 > bound 0 (slack -1, delta 1, witness cycle 0, 1 chunks)\n"
    );
}

/// A random stage for the acceptance/sabotage property: simple chain
/// pipelines whose rates and depths vary enough to exercise fractional
/// lattices.
#[derive(Debug, Clone)]
enum StageKind {
    Map { shape: u32, depth: u32 },
    Stencil { reuse: u32, depth: u32 },
    Reduction { factor: u32, depth: u32 },
}

fn arb_stage() -> impl Strategy<Value = StageKind> {
    prop_oneof![
        (1u32..4, 0u32..8).prop_map(|(shape, depth)| StageKind::Map { shape, depth }),
        (2u32..5, 0u32..6).prop_map(|(reuse, depth)| StageKind::Stencil { reuse, depth }),
        (2u32..8, 0u32..6).prop_map(|(factor, depth)| StageKind::Reduction { factor, depth }),
    ]
}

fn build_chain(stages: &[StageKind]) -> DataflowGraph {
    let mut g = DataflowGraph::new();
    let attrs = 2u32;
    let mut prev = g.source("src", Shape::new(1, attrs), 1);
    for (i, s) in stages.iter().enumerate() {
        let node = match *s {
            StageKind::Map { shape, depth } => g.map(
                &format!("map{i}"),
                Shape::new(1, attrs),
                Shape::new(shape, attrs),
                depth,
            ),
            StageKind::Stencil { reuse, depth } => g.stencil(
                &format!("stencil{i}"),
                Shape::new(1, attrs),
                Shape::new(1, attrs),
                depth,
                (reuse, 1),
            ),
            StageKind::Reduction { factor, depth } => g.reduction(
                &format!("reduce{i}"),
                Shape::new(1, attrs),
                Shape::new(1, attrs),
                depth,
                factor,
            ),
        };
        g.connect(prev, node);
        prev = node;
    }
    let sink = g.sink("sink", Shape::new(1, attrs), 1);
    g.connect(prev, sink);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every ILP schedule over a random pipeline certifies accepting —
    /// and the certificate is sharp: shaving a single element off the
    /// busiest buffer flips it to rejected at exactly that edge.
    #[test]
    fn ilp_schedules_certify_and_sabotage_rejects(
        stages in prop::collection::vec(arb_stage(), 1..6),
        chunk_points in 50u64..400,
    ) {
        let g = build_chain(&stages);
        prop_assume!(g.validate().is_ok());
        let elements = chunk_points * 2;
        let edges = edge_infos(&g, elements);
        prop_assume!(edges.iter().all(|e| e.volume > 0));
        let schedule = match optimize(&g, &OptimizeConfig::new(elements)) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::fail(format!("optimize failed: {e}"))),
        };
        let cert = certify_schedule(&edges, &schedule, 1, 1);
        prop_assert!(cert.accepted(), "honest schedule rejected:\n{}", cert.render());

        // Sabotage: undercut the busiest edge's certified peak by one.
        let victim = cert
            .edges
            .iter()
            .max_by_key(|e| e.certified_peak)
            .expect("at least one edge");
        prop_assume!(victim.certified_peak > 0);
        let mut buffers = schedule.buffer_sizes.clone();
        buffers[victim.edge] = victim.certified_peak - 1;
        let sabotaged = certify(&cert_edges(&edges), &schedule.start_cycles, &buffers, 1, 1);
        prop_assert!(!sabotaged.accepted(), "undersized buffer accepted");
        prop_assert_eq!(
            sabotaged.first_violation().expect("violation").edge,
            victim.edge
        );
    }
}
