//! Property-based tests on the optimizer ↔ simulator contract: any
//! random valid linear pipeline, once scheduled by the ILP, must run on
//! the cycle-level engine without stalls or overflows — and the sharded
//! engine must stay inside the same fluid/ILP envelope bit for bit at
//! every shard count.

use proptest::prelude::*;
use streamgrid_dataflow::{DataflowGraph, Shape};
use streamgrid_optimizer::{
    edge_infos, optimize, plan_multi_chunk, validate_schedule, OptimizeConfig,
};
use streamgrid_sim::{run, run_with, EnergyModel, EngineConfig, EngineMode};

/// A random stage descriptor: (kind, points-per-burst, depth, reuse).
#[derive(Debug, Clone)]
enum StageKind {
    Map { shape: u32, depth: u32 },
    Stencil { reuse: u32, depth: u32 },
    Reduction { factor: u32, depth: u32 },
    Global { group: u32, freq: u32, depth: u32 },
}

fn arb_stage() -> impl Strategy<Value = StageKind> {
    prop_oneof![
        (1u32..4, 0u32..8).prop_map(|(shape, depth)| StageKind::Map { shape, depth }),
        (2u32..5, 0u32..6).prop_map(|(reuse, depth)| StageKind::Stencil { reuse, depth }),
        (2u32..8, 0u32..6).prop_map(|(factor, depth)| StageKind::Reduction { factor, depth }),
        (1u32..6, 1u32..8, 1u32..10).prop_map(|(group, freq, depth)| StageKind::Global {
            group,
            freq,
            depth
        }),
    ]
}

fn build_pipeline(stages: &[StageKind]) -> DataflowGraph {
    let mut g = DataflowGraph::new();
    let mut attrs = 2u32;
    let mut prev = g.source("src", Shape::new(1, attrs), 1);
    for (i, s) in stages.iter().enumerate() {
        let node = match *s {
            StageKind::Map { shape, depth } => {
                let n = g.map(
                    &format!("map{i}"),
                    Shape::new(1, attrs),
                    Shape::new(shape, attrs),
                    depth,
                );
                n
            }
            StageKind::Stencil { reuse, depth } => g.stencil(
                &format!("stencil{i}"),
                Shape::new(1, attrs),
                Shape::new(1, attrs),
                depth,
                (reuse, 1),
            ),
            StageKind::Reduction { factor, depth } => g.reduction(
                &format!("reduce{i}"),
                Shape::new(1, attrs),
                Shape::new(1, attrs),
                depth,
                factor,
            ),
            StageKind::Global { group, freq, depth } => g.global_op(
                &format!("global{i}"),
                Shape::new(1, attrs),
                1,
                Shape::new(group, attrs),
                freq,
                (1, 1),
                depth,
            ),
        };
        g.connect(prev, node);
        prev = node;
        if let StageKind::Map { shape, .. } = *s {
            // Map may widen the stream; attrs stay, burst shape changes
            // only the rate.
            let _ = shape;
        }
        let _ = &attrs;
        attrs = g.node(node).o_shape.attrs;
    }
    let sink = g.sink("sink", Shape::new(1, attrs), 1);
    g.connect(prev, sink);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn random_pipelines_schedule_and_run_clean(
        stages in prop::collection::vec(arb_stage(), 1..5),
        chunk_points in 50u64..400,
        n_chunks in 1u64..5,
    ) {
        let g = build_pipeline(&stages);
        prop_assume!(g.validate().is_ok());
        let elements = chunk_points * 2;
        let edges = edge_infos(&g, elements);
        // Skip degenerate pipelines where some stage emits nothing.
        prop_assume!(edges.iter().all(|e| e.volume > 0));
        let schedule = match optimize(&g, &OptimizeConfig::new(elements)) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::fail(format!("optimize failed: {e}"))),
        };
        prop_assert!(validate_schedule(&edges, &schedule).is_ok());
        let plan = plan_multi_chunk(&g, &edges);
        let report = run(
            &g,
            &edges,
            &schedule,
            &plan,
            &EnergyModel::default(),
            &EngineConfig { n_chunks, ..EngineConfig::default() },
        );
        prop_assert_eq!(report.overflow_edge, None, "overflow on a valid schedule");
        prop_assert_eq!(report.stall_cycles, 0, "stall on a valid schedule");
        for (peak, cap) in report.buffer_peaks.iter().zip(&report.buffer_capacities) {
            prop_assert!(peak <= cap);
        }
        // The sharded engine must reproduce the same report — and hence
        // the same envelope — regardless of how the stages are cut.
        for shards in [1u32, 2, 5, 8] {
            let sharded = run_with(
                &g,
                &edges,
                &schedule,
                &plan,
                &EnergyModel::default(),
                &EngineConfig { n_chunks, ..EngineConfig::default() },
                EngineMode::Sharded(shards),
            );
            prop_assert_eq!(&report, &sharded, "divergence at {} shards", shards);
        }
    }
}
