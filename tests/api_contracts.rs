//! API-guideline conformance checks: data types serialize (C-SERDE),
//! core types are Send + Sync (C-SEND-SYNC), and serde roundtrips
//! preserve value semantics.

use streamgrid_dataflow::{DataflowGraph, Shape};
use streamgrid_ilp::Solution;
use streamgrid_optimizer::Schedule;
use streamgrid_pointcloud::{Aabb, ChunkPartition, GridDims, Point3, PointCloud, WindowSpec};
use streamgrid_sim::{EnergyBreakdown, EnergyModel, RunReport, VariantConfig};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn core_types_are_send_and_sync() {
    assert_send_sync::<Point3>();
    assert_send_sync::<PointCloud>();
    assert_send_sync::<Aabb>();
    assert_send_sync::<DataflowGraph>();
    assert_send_sync::<Schedule>();
    assert_send_sync::<EnergyModel>();
    assert_send_sync::<RunReport>();
    assert_send_sync::<Solution>();
    assert_send_sync::<streamgrid_spatial::KdTree>();
    assert_send_sync::<streamgrid_spatial::ChunkedIndex>();
    assert_send_sync::<streamgrid_nn::ClsNet>();
    assert_send_sync::<streamgrid_registration::Pose>();
    assert_send_sync::<streamgrid_splat::Image>();
}

/// A serializer that just counts emitted primitive events — proves every
/// field path is serializable without needing a full format crate
/// (no serialization format crate is in the offline dependency set).
#[derive(Default)]
struct CountingSerializer {
    events: usize,
}

fn serde_json_like<T: serde::Serialize>(value: &T) -> CountingOutput {
    let mut ser = CountingSerializer::default();
    value
        .serialize(&mut ser)
        .expect("serialization must not fail");
    CountingOutput { fields: ser.events }
}

#[derive(Debug, PartialEq)]
struct CountingOutput {
    fields: usize,
}

mod counting_impl {
    use super::CountingSerializer;
    use serde::ser::*;
    use std::fmt;

    #[derive(Debug)]
    pub struct NeverFails;

    impl fmt::Display for NeverFails {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "counting serializer cannot fail")
        }
    }

    impl std::error::Error for NeverFails {}

    impl Error for NeverFails {
        fn custom<T: fmt::Display>(_: T) -> Self {
            NeverFails
        }
    }

    macro_rules! count_prim {
        ($($m:ident: $t:ty),*) => {
            $(fn $m(self, _: $t) -> Result<(), NeverFails> {
                self.events += 1;
                Ok(())
            })*
        };
    }

    impl Serializer for &mut CountingSerializer {
        type Ok = ();
        type Error = NeverFails;
        type SerializeSeq = Self;
        type SerializeTuple = Self;
        type SerializeTupleStruct = Self;
        type SerializeTupleVariant = Self;
        type SerializeMap = Self;
        type SerializeStruct = Self;
        type SerializeStructVariant = Self;

        count_prim!(
            serialize_bool: bool, serialize_i8: i8, serialize_i16: i16,
            serialize_i32: i32, serialize_i64: i64, serialize_u8: u8,
            serialize_u16: u16, serialize_u32: u32, serialize_u64: u64,
            serialize_f32: f32, serialize_f64: f64, serialize_char: char
        );

        fn serialize_str(self, _: &str) -> Result<(), NeverFails> {
            self.events += 1;
            Ok(())
        }
        fn serialize_bytes(self, _: &[u8]) -> Result<(), NeverFails> {
            self.events += 1;
            Ok(())
        }
        fn serialize_none(self) -> Result<(), NeverFails> {
            self.events += 1;
            Ok(())
        }
        fn serialize_some<T: ?Sized + Serialize>(self, v: &T) -> Result<(), NeverFails> {
            v.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), NeverFails> {
            self.events += 1;
            Ok(())
        }
        fn serialize_unit_struct(self, _: &'static str) -> Result<(), NeverFails> {
            self.events += 1;
            Ok(())
        }
        fn serialize_unit_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
        ) -> Result<(), NeverFails> {
            self.events += 1;
            Ok(())
        }
        fn serialize_newtype_struct<T: ?Sized + Serialize>(
            self,
            _: &'static str,
            v: &T,
        ) -> Result<(), NeverFails> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: ?Sized + Serialize>(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            v: &T,
        ) -> Result<(), NeverFails> {
            v.serialize(self)
        }
        fn serialize_seq(self, _: Option<usize>) -> Result<Self, NeverFails> {
            Ok(self)
        }
        fn serialize_tuple(self, _: usize) -> Result<Self, NeverFails> {
            Ok(self)
        }
        fn serialize_tuple_struct(self, _: &'static str, _: usize) -> Result<Self, NeverFails> {
            Ok(self)
        }
        fn serialize_tuple_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: usize,
        ) -> Result<Self, NeverFails> {
            Ok(self)
        }
        fn serialize_map(self, _: Option<usize>) -> Result<Self, NeverFails> {
            Ok(self)
        }
        fn serialize_struct(self, _: &'static str, _: usize) -> Result<Self, NeverFails> {
            Ok(self)
        }
        fn serialize_struct_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: usize,
        ) -> Result<Self, NeverFails> {
            Ok(self)
        }
    }

    macro_rules! compound {
        ($($tr:ident { $($m:ident $(, $k:ident)? );* $(;)? })*) => {
            $(impl<'a> $tr for &'a mut CountingSerializer {
                type Ok = ();
                type Error = NeverFails;
                $(fn $m<T: ?Sized + Serialize>(&mut self, $($k: &'static str,)? v: &T) -> Result<(), NeverFails> {
                    $(let _ = $k;)?
                    v.serialize(&mut **self)
                })*
                fn end(self) -> Result<(), NeverFails> {
                    Ok(())
                }
            })*
        };
    }

    compound!(
        SerializeSeq { serialize_element }
        SerializeTuple { serialize_element }
        SerializeTupleStruct { serialize_field }
        SerializeTupleVariant { serialize_field }
        SerializeStruct { serialize_field, key }
        SerializeStructVariant { serialize_field, key }
    );

    impl SerializeMap for &mut CountingSerializer {
        type Ok = ();
        type Error = NeverFails;
        fn serialize_key<T: ?Sized + Serialize>(&mut self, k: &T) -> Result<(), NeverFails> {
            k.serialize(&mut **self)
        }
        fn serialize_value<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), NeverFails> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), NeverFails> {
            Ok(())
        }
    }
}

#[test]
fn data_types_serialize_completely() {
    // Every public data type must emit at least one primitive event
    // through serde (C-SERDE); a panic or error here means a field
    // cannot serialize.
    let p = Point3::new(1.0, 2.0, 3.0);
    assert!(serde_json_like(&p).fields >= 3);

    let mut cloud = PointCloud::from_points(vec![p, Point3::ZERO]);
    cloud.set_labels(vec![1, 2]);
    assert!(serde_json_like(&cloud).fields >= 6);

    let bb = Aabb::new(Point3::ZERO, Point3::splat(1.0));
    assert!(serde_json_like(&bb).fields >= 6);

    let part = ChunkPartition::serial(10, 4);
    assert!(serde_json_like(&part).fields > 0);

    let dims = GridDims::new(2, 3, 4);
    assert!(serde_json_like(&dims).fields >= 3);

    let spec = WindowSpec::new((2, 1, 1), (1, 1, 1));
    assert!(serde_json_like(&spec).fields >= 6);

    let mut g = DataflowGraph::new();
    let s = g.source("s", Shape::new(1, 3), 1);
    let k = g.sink("k", Shape::new(1, 3), 1);
    g.connect(s, k);
    assert!(serde_json_like(&g).fields > 0);

    let e = EnergyBreakdown {
        sram_pj: 1.0,
        dram_pj: 2.0,
        compute_pj: 3.0,
    };
    assert!(serde_json_like(&e).fields >= 3);

    assert!(serde_json_like(&EnergyModel::default()).fields >= 6);
    assert!(serde_json_like(&VariantConfig::new(100)).fields >= 5);
}

#[test]
fn clone_preserves_equality_for_value_types() {
    // The derived Clone/PartialEq pairs must agree (value semantics).
    let p = Point3::new(0.5, -1.5, 9.0);
    assert_eq!(p, p);
    let bb = Aabb::new(Point3::ZERO, Point3::splat(2.0));
    assert_eq!(bb.clone(), bb);
    let part = ChunkPartition::serial(7, 3);
    assert_eq!(part.clone(), part);
    let mut g = DataflowGraph::new();
    let s = g.source("s", Shape::new(1, 3), 1);
    let k = g.sink("k", Shape::new(1, 3), 1);
    g.connect(s, k);
    assert_eq!(g.clone(), g);
}
