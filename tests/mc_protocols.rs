//! Property tests cross-checking the serving layer's admission
//! protocol against the model checker's obligations.
//!
//! `crates/server/src/mc.rs` proves the ledger/waitlist protocol over
//! one adversarial scenario's *every interleaving*; these properties
//! cover the orthogonal axis — *many random scenarios* driven through
//! one representative schedule — and pin the same invariants: token
//! conservation (committed = sum of live projections, never above
//! capacity, zero at drain) and strict-FIFO admission order. A bug that
//! slipped both nets would need to be both schedule- and
//! scenario-specific.
//!
//! The `mc_certifies_the_default_scenario` test is the explicit bridge:
//! it runs the model checker itself, so the property suite fails
//! loudly if the certificate ever regresses.

use std::collections::VecDeque;

use proptest::prelude::*;
use streamgrid_serve::{
    check_ledger, queued_admission, LedgerScenario, LedgerVariant, QueuedDecision, TokenLedger,
};
use streamgrid_verify::McConfig;

/// Drives a full admit→run→release lifecycle for `projections` over a
/// `capacity`-token ledger using the shipped decision functions,
/// checking conservation at every step. Returns the admission order.
fn drive(capacity: u64, projections: &[u64]) -> Vec<usize> {
    let mut ledger = TokenLedger::new(capacity);
    let mut waitlist: VecDeque<usize> = VecDeque::new();
    let mut running: VecDeque<usize> = VecDeque::new();
    let mut admitted = Vec::new();
    let mut live_tokens = 0u64;

    let check = |ledger: &TokenLedger, live: u64| {
        assert!(ledger.committed() <= ledger.capacity(), "over-committed");
        assert_eq!(ledger.committed(), live, "conservation broke");
    };

    for (i, &p) in projections.iter().enumerate() {
        match queued_admission(&mut ledger, !waitlist.is_empty(), p) {
            QueuedDecision::Admit => {
                live_tokens += p;
                admitted.push(i);
                running.push_back(i);
            }
            QueuedDecision::Waitlist => waitlist.push_back(i),
            QueuedDecision::RejectImpossibleFit => {
                assert!(p > capacity, "only impossible fits are rejected")
            }
        }
        check(&ledger, live_tokens);
    }

    // Finish running tenants one at a time; each release triggers the
    // FIFO sweep, exactly like the scheduler's Phase A.
    while let Some(done) = running.pop_front() {
        ledger.release(projections[done]);
        live_tokens -= projections[done];
        for i in streamgrid_serve::admit_fifo(&mut ledger, &mut waitlist, |i| projections[i]) {
            live_tokens += projections[i];
            admitted.push(i);
            running.push_back(i);
        }
        check(&ledger, live_tokens);
    }

    assert_eq!(ledger.committed(), 0, "tokens leaked at drain");
    assert!(waitlist.is_empty(), "waitlist failed to drain");
    admitted
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// For any random capacity and projection sequence: tokens are
    /// conserved at every step, never exceed capacity, drain to zero,
    /// and the waitlist always empties (impossible fits are rejected
    /// up front, possible ones eventually run).
    #[test]
    fn ledger_conserves_tokens_and_drains(
        capacity in 1u64..12,
        projections in prop::collection::vec(1u64..15, 1..12),
    ) {
        let admitted = drive(capacity, &projections);
        let expected: Vec<usize> = (0..projections.len())
            .filter(|&i| projections[i] <= capacity)
            .collect();
        // Every feasible tenant was admitted exactly once.
        let mut sorted = admitted.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, expected);
    }

    /// Strict FIFO: with everything drained one-at-a-time, feasible
    /// tenants are admitted in submission order — a small late tenant
    /// never jumps a large early one.
    #[test]
    fn admission_order_is_strictly_fifo(
        capacity in 1u64..12,
        projections in prop::collection::vec(1u64..15, 1..12),
    ) {
        let admitted = drive(capacity, &projections);
        prop_assert!(
            admitted.windows(2).all(|w| w[0] < w[1]),
            "admission order {:?} is not FIFO", admitted
        );
    }

    /// The same random scenarios, certified by the model checker over
    /// *every* completion interleaving (not just the one `drive` uses):
    /// the `Correct` variant must pass exhaustively.
    #[test]
    fn mc_passes_on_random_scenarios(
        capacity in 1u64..8,
        projections in prop::collection::vec(1u64..10, 1..6),
    ) {
        let report = check_ledger(
            &LedgerScenario { capacity, projections },
            LedgerVariant::Correct,
            &McConfig::default(),
        );
        prop_assert!(report.passed(), "violation: {:?}", report.violation);
    }
}

/// The bridge to the certificate CI enforces: the default adversarial
/// scenario passes, and every seeded sabotage is caught.
#[test]
fn mc_certifies_the_default_scenario() {
    let mc = McConfig::default();
    let scenario = LedgerScenario::default();
    assert!(check_ledger(&scenario, LedgerVariant::Correct, &mc).passed());
    for variant in [
        LedgerVariant::FifoBypass,
        LedgerVariant::NoImpossibleFitReject,
        LedgerVariant::ForgetRelease,
    ] {
        let report = check_ledger(&scenario, variant, &mc);
        assert!(
            report.violation.is_some(),
            "{variant:?} must be caught by the model checker"
        );
    }
}
