//! Contract tests for the pluggable schedule caches behind `Session`:
//!
//! * the acceptance pins — two sessions over one `SharedCache` pay
//!   exactly one ILP solve between them, and a warm `FileCache` run
//!   pays zero;
//! * the `FileCache` round trip — compile → persist → fresh
//!   process-like load → identical `CompileSummary` bytes and reports;
//! * robustness — corrupt or partial cache files fall back to a clean
//!   solve instead of erroring or poisoning results.

use std::fs;
use std::path::PathBuf;

use streamgrid_core::apps::AppDomain;
use streamgrid_core::cache::{FileCache, ScheduleCache, SharedCache};
use streamgrid_core::framework::StreamGrid;
use streamgrid_core::source::{ReplaySource, SizeBucketing, StreamOptions};
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};

fn csdt4() -> StreamGrid {
    StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)))
}

/// A unique scratch directory per test (tests run concurrently in one
/// process; no tempfile crate offline). Removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "streamgrid-schedule-cache-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Acceptance pin: two sessions sharing a `SharedCache` over the same
/// spec/config report exactly one ILP solve between them — and their
/// reports are identical to a privately cached session's.
#[test]
fn shared_cache_pays_one_solve_across_sessions() {
    let fw = csdt4();
    let shared = SharedCache::new();
    let mut a = fw
        .session_builder(AppDomain::Classification.spec())
        .with_cache(shared.clone())
        .build();
    let mut b = fw
        .session_builder(AppDomain::Classification.spec())
        .with_cache(shared.clone())
        .build();

    let report_a = a.run(4 * 300).unwrap();
    assert_eq!(shared.solver_invocations(), 1);
    let report_b = b.run(4 * 300).unwrap();
    // b's run hit the schedule a already solved: still one solve total,
    // reported identically through both sessions.
    assert_eq!(shared.solver_invocations(), 1);
    assert_eq!(a.solver_invocations(), 1);
    assert_eq!(b.solver_invocations(), 1);
    assert_eq!(report_a, report_b);

    // Private sessions see the same results; sharing changes accounting,
    // never reports.
    let mut private = fw.session(AppDomain::Classification.spec());
    assert_eq!(private.run(4 * 300).unwrap(), report_a);

    // A new size is one more solve, shared by both sessions again.
    a.run(4 * 600).unwrap();
    b.run(4 * 600).unwrap();
    assert_eq!(shared.solver_invocations(), 2);
    assert_eq!(shared.compiled_count(), 2);
}

/// Different specs through one shared cache never collide: each pays
/// its own solve and gets its own design.
#[test]
fn shared_cache_keys_are_spec_scoped() {
    let fw = csdt4();
    let shared = SharedCache::new();
    let mut cls = fw
        .session_builder(AppDomain::Classification.spec())
        .with_cache(shared.clone())
        .build();
    let mut reg = fw
        .session_builder(AppDomain::Registration.spec())
        .with_cache(shared.clone())
        .build();
    let a = cls.run(4 * 300).unwrap();
    let b = reg.run(4 * 300).unwrap();
    assert_eq!(
        shared.solver_invocations(),
        2,
        "distinct specs must not fold"
    );
    assert_ne!(a, b, "designs from different specs must differ");
    assert_eq!(a, fw.execute(AppDomain::Classification, 4 * 300).unwrap());
    assert_eq!(b, fw.execute(AppDomain::Registration, 4 * 300).unwrap());
}

/// Acceptance pin: compile → persist → fresh process-like load (new
/// `FileCache`, new `Session`) → identical `CompileSummary` bytes and
/// zero new solver invocations.
#[test]
fn file_cache_round_trips_with_zero_warm_solves() {
    let scratch = ScratchDir::new("roundtrip");
    let fw = csdt4();
    let sizes = [4 * 300u64, 4 * 450, 4 * 300];

    // Cold: pays the solves and persists them.
    let mut cold = fw
        .session_builder(AppDomain::Classification.spec())
        .with_cache(FileCache::new(&scratch.0))
        .build();
    let cold_reports = cold.run_batch(&sizes).unwrap();
    assert_eq!(
        cold.solver_invocations(),
        2,
        "two distinct sizes, two solves"
    );
    assert!(
        scratch.0.read_dir().unwrap().count() >= 2,
        "entries persisted"
    );

    // Warm: a fresh cache instance over the same directory — the
    // process-like boundary (nothing shared in memory) — pays nothing.
    let warm_cache = FileCache::new(&scratch.0);
    let mut warm = fw
        .session_builder(AppDomain::Classification.spec())
        .with_cache(warm_cache)
        .build();
    let warm_reports = warm.run_batch(&sizes).unwrap();
    assert_eq!(
        warm.solver_invocations(),
        0,
        "a warm directory must serve every solve"
    );
    assert_eq!(
        warm_reports, cold_reports,
        "loaded designs must execute identically"
    );
    // Identical CompileSummary bytes, frame for frame.
    for (w, c) in warm_reports.iter().zip(&cold_reports) {
        assert_eq!(w.compile, c.compile);
        assert_eq!(format!("{:?}", w.compile), format!("{:?}", c.compile));
    }
}

/// A warm `FileCache` under a whole stream: zero stream solves, report
/// bit-identical to a privately cached session's — including with
/// workers.
#[test]
fn file_cache_streams_warm_and_parallel() {
    let scratch = ScratchDir::new("stream");
    let fw = csdt4();
    let sizes: Vec<u64> = (0..8u64).map(|i| 1500 + 90 * i).collect();
    let options = StreamOptions::bucketed(SizeBucketing::Quantize(600));

    let mut private = fw.session(AppDomain::Registration.spec());
    let expected = private.stream(ReplaySource::new(&sizes), &options).unwrap();

    let mut cold = fw
        .session_builder(AppDomain::Registration.spec())
        .with_cache(FileCache::new(&scratch.0))
        .build();
    let cold_report = cold.stream(ReplaySource::new(&sizes), &options).unwrap();
    assert_eq!(cold_report, expected);

    let mut warm = fw
        .session_builder(AppDomain::Registration.spec())
        .with_cache(FileCache::new(&scratch.0))
        .build();
    let warm_report = warm
        .stream(ReplaySource::new(&sizes), &options.with_workers(4))
        .unwrap();
    assert_eq!(warm.solver_invocations(), 0);
    assert_eq!(warm_report.solver_invocations, 0, "the stream paid nothing");
    assert_eq!(
        warm_report.frames, expected.frames,
        "frames match bit for bit"
    );
}

/// Corrupt, truncated, or garbage cache files are treated as misses: the
/// session re-solves cleanly and produces the same reports as an
/// uncached run, never an error.
#[test]
fn corrupt_cache_files_fall_back_to_clean_solves() {
    let scratch = ScratchDir::new("corrupt");
    let fw = csdt4();

    // Populate the directory.
    let mut cold = fw
        .session_builder(AppDomain::Classification.spec())
        .with_cache(FileCache::new(&scratch.0))
        .build();
    let expected = cold.run(4 * 300).unwrap();
    assert_eq!(cold.solver_invocations(), 1);

    let entries: Vec<PathBuf> = scratch
        .0
        .read_dir()
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(!entries.is_empty());

    for (i, mutilate) in [
        // Outright garbage.
        |path: &PathBuf| fs::write(path, "this is not json {{{").unwrap(),
        // Valid JSON, wrong shape.
        |path: &PathBuf| fs::write(path, "{\"version\": 1, \"schedule\": 42}").unwrap(),
        // Partial write: truncate to half.
        |path: &PathBuf| {
            let text = fs::read_to_string(path).unwrap();
            fs::write(path, &text[..text.len() / 2]).unwrap();
        },
    ]
    .iter()
    .enumerate()
    {
        for path in &entries {
            mutilate(path);
        }
        let mut session = fw
            .session_builder(AppDomain::Classification.spec())
            .with_cache(FileCache::new(&scratch.0))
            .build();
        let report = session.run(4 * 300).unwrap();
        assert_eq!(
            session.solver_invocations(),
            1,
            "mutation #{i}: the fallback must be a clean solve"
        );
        assert_eq!(report, expected, "mutation #{i}: results must not drift");
    }

    // The fallback solve re-persisted a good entry: warm again.
    let mut healed = fw
        .session_builder(AppDomain::Classification.spec())
        .with_cache(FileCache::new(&scratch.0))
        .build();
    healed.run(4 * 300).unwrap();
    assert_eq!(healed.solver_invocations(), 0, "the cache must self-heal");
}

/// A cache entry produced under one config must not satisfy another:
/// base (non-DT, margin-inflated buffers) and CS+DT designs stay
/// separate files and separate solves.
#[test]
fn file_cache_separates_configs() {
    let scratch = ScratchDir::new("configs");
    let csdt = StreamGridConfig::cs_dt(SplitConfig::linear(4, 2));
    let base = StreamGridConfig::base();

    let mut session = StreamGrid::new(csdt)
        .session_builder(AppDomain::Classification.spec())
        .with_cache(FileCache::new(&scratch.0))
        .build();
    let csdt_report = session.run(4 * 300).unwrap();
    session.set_config(base);
    let base_report = session.run(4 * 300).unwrap();
    assert_eq!(session.solver_invocations(), 2);
    assert!(
        base_report.compile.onchip_bytes > csdt_report.compile.onchip_bytes,
        "base must carry the latency margin"
    );

    // Warm in either config order: zero solves, right designs.
    let mut warm = StreamGrid::new(base)
        .session_builder(AppDomain::Classification.spec())
        .with_cache(FileCache::new(&scratch.0))
        .build();
    assert_eq!(warm.run(4 * 300).unwrap(), base_report);
    warm.set_config(csdt);
    assert_eq!(warm.run(4 * 300).unwrap(), csdt_report);
    assert_eq!(warm.solver_invocations(), 0);
}
