//! Contract tests for the multi-tenant streaming server
//! (`streamgrid-serve`): admission control, weighted-fair QoS,
//! backpressure, shedding/degradation, and the bit-identity anchor.
//!
//! The anchor pin: a single admitted tenant's `StreamReport` —
//! per-frame `FrameReport`s, solve count, bucketing — equals running
//! the same source through `Session::stream` directly, bit for bit.
//! Everything the server adds (queues, WFQ, admission) is scheduling;
//! results never change.

use std::time::{Duration, Instant};

use streamgrid_core::apps::AppDomain;
use streamgrid_core::framework::{ExecMode, ExecuteOptions, StreamGrid};
use streamgrid_core::source::{ReplaySource, SizeBucketing, StreamOptions, SyntheticSource};
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
use streamgrid_serve::{AdmissionError, QosClass, ServerConfig, StreamServer, TenantSpec};

fn csdt4() -> StreamGridConfig {
    StreamGridConfig::cs_dt(SplitConfig::linear(4, 2))
}

/// A spec on the classification pipeline under the shared test config.
fn cls_spec(name: &str) -> TenantSpec {
    TenantSpec::new(name, AppDomain::Classification.spec(), csdt4())
}

/// Execution options that force the cycle-accurate oracle — per-frame
/// wall times long enough that queues genuinely back up on any host.
fn slow_exec() -> ExecuteOptions {
    ExecuteOptions::for_spec(&AppDomain::Classification.spec())
        .with_exec_mode(ExecMode::CycleAccurate)
}

/// The anchor: one admitted tenant == `Session::stream`, bit for bit —
/// same frames, same per-frame reports, same solve count, same
/// bucketing — across a size-varied replay under quantized buckets.
#[test]
fn single_tenant_is_bit_identical_to_session_stream() {
    let sizes: Vec<u64> = (0..10).map(|i| 1200 + 130 * i).collect();
    let bucketing = SizeBucketing::Quantize(400);

    let mut server = StreamServer::new(ServerConfig::default().with_workers(2));
    server
        .submit(
            cls_spec("solo").with_bucketing(bucketing),
            ReplaySource::new(&sizes),
        )
        .unwrap();
    let report = server.run();

    let mut session = StreamGrid::new(csdt4()).session(AppDomain::Classification.spec());
    let direct = session
        .stream(
            ReplaySource::new(&sizes),
            &StreamOptions::bucketed(bucketing),
        )
        .unwrap();

    assert_eq!(report.tenants.len(), 1);
    assert_eq!(
        report.tenants[0].stream, direct,
        "the serving layer must never change results"
    );
    assert_eq!(report.solver_invocations, direct.solver_invocations);
    assert!(report.all_clean());
    // The SLO side has one executed sample per frame.
    assert_eq!(report.tenants[0].latency.frames, direct.frame_count());
    assert_eq!(report.class(QosClass::Standard).tenants, 1);
}

/// Admission control rejects at capacity with the typed error carrying
/// the exact shortfall, and enforces the tenant cap.
#[test]
fn admission_rejects_at_capacity_with_typed_errors() {
    // 10-token pool: a 6-frame tenant fits, the next 6-frame one does
    // not (6 > 4 available).
    let mut server = StreamServer::new(ServerConfig::default().with_workers(1).with_capacity(10));
    server
        .submit(cls_spec("first"), SyntheticSource::new(1200, 6))
        .expect("6 of 10 tokens fit");
    assert_eq!(server.available_tokens(), 4);
    match server.submit(cls_spec("second"), SyntheticSource::new(1200, 6)) {
        Err(AdmissionError::Saturated {
            projected,
            available,
            capacity,
        }) => assert_eq!((projected, available, capacity), (6, 4, 10)),
        other => panic!("expected Saturated, got {other:?}"),
    }
    // A hint-less source is charged the default projection instead.
    struct Opaque(u64);
    impl streamgrid_core::source::FrameSource for Opaque {
        fn next_frame(&mut self) -> Option<streamgrid_core::source::Frame> {
            if self.0 == 0 {
                return None;
            }
            self.0 -= 1;
            Some(streamgrid_core::source::Frame::synthetic(self.0, 1200))
        }
    }
    match server.submit(cls_spec("opaque"), Opaque(1)) {
        Err(AdmissionError::Saturated { projected, .. }) => {
            assert_eq!(
                projected,
                ServerConfig::default().default_projection,
                "an unsized source is charged the default projection"
            );
        }
        other => panic!("expected Saturated for the unsized source, got {other:?}"),
    }
    // But a max_frames bound caps the charge and fits.
    server
        .submit(cls_spec("bounded").with_max_frames(2), Opaque(4))
        .expect("max_frames caps the projection to 2 of 4 free tokens");

    // The tenant cap is its own typed rejection.
    let mut capped = StreamServer::new(ServerConfig::default().with_max_tenants(1));
    capped
        .submit(cls_spec("only"), SyntheticSource::new(1200, 1))
        .unwrap();
    match capped.submit(cls_spec("extra"), SyntheticSource::new(1200, 1)) {
        Err(AdmissionError::TenantLimit { max_tenants }) => assert_eq!(max_tenants, 1),
        other => panic!("expected TenantLimit, got {other:?}"),
    }
    let report = capped.run();
    assert_eq!((report.admitted, report.rejected), (1, 1));
}

/// `submit_queued` waitlists what `submit` would reject, and the
/// scheduler admits FIFO as finishing tenants release tokens — every
/// waitlisted tenant eventually runs to completion.
#[test]
fn waitlisted_tenants_are_admitted_fifo_as_tokens_free() {
    // 4-token pool, 3-token tenants: one runs at a time, four total.
    let mut server = StreamServer::new(ServerConfig::default().with_workers(1).with_capacity(4));
    for i in 0..4 {
        server
            .submit_queued(cls_spec(&format!("t{i}")), SyntheticSource::new(1200, 3))
            .expect("fits the total capacity, so it may wait");
    }
    // A tenant that could never fit is rejected, not deadlocked.
    match server.submit_queued(cls_spec("whale"), SyntheticSource::new(1200, 9)) {
        Err(AdmissionError::Saturated { capacity, .. }) => assert_eq!(capacity, 4),
        other => panic!("expected Saturated for an impossible tenant, got {other:?}"),
    }
    let report = server.run();
    assert_eq!(report.admitted, 4);
    assert_eq!(report.rejected, 1);
    assert_eq!(
        report.queued_admissions, 3,
        "the first tenant fit immediately; the other three waited"
    );
    assert_eq!(report.frame_count(), 12);
    assert!(report.all_clean());
}

/// Backpressure never deadlocks: tiny queues, every class saturated,
/// multiple tenants per class — the run completes inside a generous
/// wall budget relative to the same work done directly (the
/// `tests/shard_backoff.rs` budget idiom).
#[test]
fn saturated_classes_with_tiny_queues_never_deadlock() {
    let frames = 5u64;
    // The same total work, serverless, as the budget baseline.
    let t0 = Instant::now();
    let mut session = StreamGrid::new(csdt4()).session(AppDomain::Classification.spec());
    session
        .stream(
            SyntheticSource::new(1200, frames),
            &StreamOptions::default(),
        )
        .unwrap();
    let one_direct = t0.elapsed();

    let mut server = StreamServer::new(ServerConfig::default().with_workers(2).with_queue_depth(1));
    let classes = [
        QosClass::Interactive,
        QosClass::Standard,
        QosClass::Background,
    ];
    let tenants = 9;
    for i in 0..tenants {
        server
            .submit(
                cls_spec(&format!("t{i}")).with_qos(classes[i % 3]),
                SyntheticSource::new(1200, frames),
            )
            .unwrap();
    }
    let t1 = Instant::now();
    let report = server.run();
    let wall = t1.elapsed();

    assert_eq!(report.frame_count(), tenants as u64 * frames);
    assert!(report.all_clean());
    for class in &report.classes {
        assert_eq!(class.tenants, 3);
        assert_eq!(class.latency.frames, 3 * frames);
    }
    let budget = one_direct * tenants as u32 * 25 + Duration::from_secs(5);
    assert!(
        wall <= budget,
        "9 tenants on depth-1 queues took {wall:?} against {budget:?} \
         (one direct stream: {one_direct:?}) — scheduler or condvar thrash"
    );
}

/// Weighted-fair isolation: Interactive p95 under full Background
/// saturation stays within a generous bound of Interactive running
/// alone. Background may wait; Interactive must not starve.
#[test]
fn interactive_p95_bounded_under_background_saturation() {
    let exec = slow_exec();
    let run_mix = |background_tenants: usize| {
        let mut server =
            StreamServer::new(ServerConfig::default().with_workers(1).with_queue_depth(2));
        server
            .submit(
                cls_spec("fg")
                    .with_qos(QosClass::Interactive)
                    .with_exec(exec),
                SyntheticSource::new(2400, 8),
            )
            .unwrap();
        for i in 0..background_tenants {
            server
                .submit(
                    cls_spec(&format!("bg{i}"))
                        .with_qos(QosClass::Background)
                        .with_exec(exec),
                    SyntheticSource::new(2400, 6),
                )
                .unwrap();
        }
        server.run()
    };

    let alone = run_mix(0);
    let saturated = run_mix(4);
    let alone_p95 = alone.class(QosClass::Interactive).latency.p95_ms;
    let saturated_p95 = saturated.class(QosClass::Interactive).latency.p95_ms;
    assert!(
        alone_p95 > 0.0,
        "cycle-accurate frames take measurable time"
    );
    assert_eq!(saturated.class(QosClass::Background).tenants, 4);
    assert!(saturated.all_clean());
    // Generous 1-core bound: WFQ gives Interactive 8/9 of dispatches
    // under dual backlog, so its p95 may pay a queue wait but never the
    // Background backlog. 25× + 50 ms absorbs any CI-host noise.
    assert!(
        saturated_p95 <= alone_p95 * 25.0 + 50.0,
        "Interactive p95 {saturated_p95:.3} ms under saturation vs {alone_p95:.3} ms alone \
         — Background is starving the Interactive class"
    );
}

/// A zero shed deadline sheds every Background frame at dispatch —
/// deterministically — while Interactive (never sheddable) executes
/// everything; the accounting splits exactly.
#[test]
fn background_sheds_past_deadline_interactive_never_does() {
    let mut server = StreamServer::new(
        ServerConfig::default()
            .with_workers(1)
            .with_shed_after(Duration::ZERO),
    );
    server
        .submit(
            cls_spec("fg").with_qos(QosClass::Interactive),
            SyntheticSource::new(1200, 4),
        )
        .unwrap();
    server
        .submit(
            cls_spec("bg").with_qos(QosClass::Background),
            SyntheticSource::new(1200, 4),
        )
        .unwrap();
    let report = server.run();

    let fg = &report.tenants[0];
    let bg = &report.tenants[1];
    assert_eq!((fg.shed_frames, fg.stream.frame_count()), (0, 4));
    assert_eq!((bg.shed_frames, bg.stream.frame_count()), (4, 0));
    assert_eq!(report.class(QosClass::Background).shed_frames, 4);
    assert_eq!(report.class(QosClass::Interactive).shed_frames, 0);
    assert_eq!(report.shed_frames(), 4);
    assert!(report.all_clean(), "shed frames are not errors");
}

/// Background-only policy fields on a non-Background tenant are inert
/// and flagged `SG006` on the tenant's report (and aggregated on the
/// server report); clean specs produce clean lint summaries.
#[test]
fn inert_qos_policy_on_non_background_is_flagged_sg006() {
    let mut server = StreamServer::new(ServerConfig::default().with_workers(1));
    // Interactive tenant setting BOTH Background-only knobs: one SG006
    // naming both fields.
    server
        .submit(
            cls_spec("eager")
                .with_qos(QosClass::Interactive)
                .with_shed_after(Duration::ZERO)
                .with_degraded_bucketing(SizeBucketing::Quantize(4800)),
            SyntheticSource::new(1200, 2),
        )
        .unwrap();
    // A clean Standard tenant: no lints.
    server
        .submit(cls_spec("quiet"), SyntheticSource::new(1200, 2))
        .unwrap();
    // A Background tenant with the same knobs: legitimate, no lints.
    server
        .submit(
            cls_spec("bg")
                .with_qos(QosClass::Background)
                .with_degraded_bucketing(SizeBucketing::Quantize(4800)),
            SyntheticSource::new(1200, 2),
        )
        .unwrap();
    let report = server.run();

    let eager = &report.tenants[0];
    assert_eq!(eager.lints.warnings, 1);
    assert_eq!(eager.lints.errors, 0);
    assert!(
        eager.lints.messages[0].contains("SG006")
            && eager.lints.messages[0].contains("shed_after")
            && eager.lints.messages[0].contains("degraded_bucketing"),
        "{:?}",
        eager.lints.messages
    );
    // The zero shed deadline was inert: every Interactive frame ran.
    assert_eq!(eager.shed_frames, 0);
    assert_eq!(eager.stream.frame_count(), 2);
    assert!(eager.is_clean(), "SG006 is a warning, not a failure");

    assert!(report.tenants[1].lints.is_clean());
    assert!(report.tenants[2].lints.is_clean());
    // The server-level summary aggregates the one warning.
    assert_eq!(report.lints.warnings, 1);
    assert_eq!(report.lints.messages.len(), 1);
    assert!(report.all_clean());
}

/// Per-tenant shed/degrade policy on a Background tenant overrides the
/// server-wide config: it takes effect with no server-level policy set
/// at all, and lints stay clean.
#[test]
fn background_tenant_policy_overrides_server_config() {
    // No server-wide shed_after: only the tenant's own zero deadline
    // sheds its frames; the policy-less Background tenant executes all.
    let mut server = StreamServer::new(ServerConfig::default().with_workers(1));
    server
        .submit(
            cls_spec("shedder")
                .with_qos(QosClass::Background)
                .with_shed_after(Duration::ZERO),
            SyntheticSource::new(1200, 4),
        )
        .unwrap();
    server
        .submit(
            cls_spec("keeper").with_qos(QosClass::Background),
            SyntheticSource::new(1200, 4),
        )
        .unwrap();
    let report = server.run();
    let shedder = &report.tenants[0];
    let keeper = &report.tenants[1];
    assert_eq!((shedder.shed_frames, shedder.stream.frame_count()), (4, 0));
    assert_eq!((keeper.shed_frames, keeper.stream.frame_count()), (0, 4));
    assert!(shedder.lints.is_clean(), "Background policy is not SG006");
    assert!(report.lints.is_clean());

    // Per-tenant degraded bucketing with no server-wide one: the
    // pressured Background tenant compiles at its own coarse bucket.
    let exec = slow_exec();
    let mut server = StreamServer::new(ServerConfig::default().with_workers(1).with_queue_depth(2));
    server
        .submit(
            cls_spec("fg")
                .with_qos(QosClass::Interactive)
                .with_exec(exec),
            SyntheticSource::new(1200, 4),
        )
        .unwrap();
    server
        .submit(
            cls_spec("bg")
                .with_qos(QosClass::Background)
                .with_exec(exec)
                .with_degraded_bucketing(SizeBucketing::Quantize(4800)),
            SyntheticSource::new(1200, 8),
        )
        .unwrap();
    let report = server.run();
    let bg = &report.tenants[1];
    assert!(
        bg.degraded_frames >= 1,
        "the tenant's own degraded bucketing must engage under pressure"
    );
    assert!(
        bg.stream
            .frames
            .iter()
            .any(|f| f.scheduled_elements == 4800),
        "degraded frames compile at the tenant's Quantize(4800) bucket"
    );
    assert!(report.lints.is_clean());
}

/// Under queue pressure, Background frames compile under the coarser
/// degraded bucketing (and only Background — Interactive buckets stay
/// exact).
#[test]
fn background_degrades_to_coarser_buckets_under_pressure() {
    let exec = slow_exec();
    let mut server = StreamServer::new(
        ServerConfig::default()
            .with_workers(1)
            .with_queue_depth(2)
            .with_degraded_bucketing(SizeBucketing::Quantize(4800)),
    );
    server
        .submit(
            cls_spec("fg")
                .with_qos(QosClass::Interactive)
                .with_exec(exec),
            SyntheticSource::new(1200, 4),
        )
        .unwrap();
    server
        .submit(
            cls_spec("bg")
                .with_qos(QosClass::Background)
                .with_exec(exec),
            SyntheticSource::new(1200, 8),
        )
        .unwrap();
    let report = server.run();

    let fg = &report.tenants[0];
    let bg = &report.tenants[1];
    assert_eq!(fg.degraded_frames, 0, "Interactive never degrades");
    assert!(
        fg.stream
            .frames
            .iter()
            .all(|f| f.scheduled_elements == f.frame.elements),
        "Interactive buckets stay exact"
    );
    // With one worker on cycle-accurate frames, the Background queue
    // holds a waiting job from the second pull on: later pulls see the
    // half-full queue and degrade.
    assert!(
        bg.degraded_frames >= 1,
        "a saturated depth-2 Background queue must trigger degradation"
    );
    // Degraded frames schedule the coarse bucket, not the exact size.
    assert!(
        bg.stream
            .frames
            .iter()
            .any(|f| f.scheduled_elements == 4800),
        "degraded frames compile at the Quantize(4800) bucket"
    );
    assert!(report.all_clean(), "degraded frames still run clean");
}
