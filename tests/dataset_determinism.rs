//! Determinism pins for the dataset generators: streaming results can
//! only be reproducible if the sources feeding the sessions are. Every
//! generator must produce byte-identical output for the same seed
//! (coordinates compared at the bit level, not via float tolerance)
//! and different output for different seeds.

use streamgrid_pointcloud::datasets::gaussians::{self, SceneKind};
use streamgrid_pointcloud::datasets::lidar::{scan, trajectory, LidarConfig, Scene};
use streamgrid_pointcloud::datasets::modelnet::{self, ModelNetConfig};
use streamgrid_pointcloud::datasets::shapenet::{self, Category};
use streamgrid_pointcloud::datasets::stream::LidarStream;
use streamgrid_pointcloud::{Point3, PointCloud};

/// Bit-exact comparison: `PartialEq` on f32 would already fail on any
/// difference, but comparing bit patterns also distinguishes 0.0 from
/// -0.0 and documents the strength of the guarantee.
fn assert_bit_identical(a: &PointCloud, b: &PointCloud) {
    assert_eq!(a.len(), b.len(), "point counts differ");
    for (i, (p, q)) in a.points().iter().zip(b.points()).enumerate() {
        for axis in 0..3 {
            assert_eq!(
                p.axis(axis).to_bits(),
                q.axis(axis).to_bits(),
                "point {i} axis {axis}: {p} vs {q}"
            );
        }
    }
}

#[test]
fn lidar_scan_is_deterministic_per_seed() {
    let scene = Scene::urban(7, 35.0, 12, 6);
    let cfg = LidarConfig {
        beams: 4,
        azimuth_steps: 120,
        ..LidarConfig::default()
    };
    let a = scan(&scene, &cfg, Point3::ZERO, 0.2, 42);
    let b = scan(&scene, &cfg, Point3::ZERO, 0.2, 42);
    assert_bit_identical(&a.cloud, &b.cloud);
    assert_eq!(a.rings, b.rings);

    let c = scan(&scene, &cfg, Point3::ZERO, 0.2, 43);
    assert_ne!(
        a.cloud, c.cloud,
        "different seeds must differ (range noise)"
    );
}

#[test]
fn lidar_stream_replays_bit_identically() {
    let make = || {
        LidarStream::new(
            Scene::urban(3, 30.0, 8, 4),
            LidarConfig {
                beams: 4,
                azimuth_steps: 90,
                ..LidarConfig::default()
            },
            trajectory(4, 0.4, 0.004),
            11,
        )
    };
    for (a, b) in make().zip(make()) {
        assert_bit_identical(&a.cloud, &b.cloud);
        assert_eq!(a.rings, b.rings);
    }
}

#[test]
fn trajectory_is_deterministic() {
    // No RNG involved, but the pin documents the contract: a trajectory
    // is a pure function of its arguments.
    let a = trajectory(16, 0.5, 0.01);
    let b = trajectory(16, 0.5, 0.01);
    assert_eq!(a.len(), b.len());
    for ((pa, ya), (pb, yb)) in a.iter().zip(&b) {
        assert_eq!(pa, pb);
        assert_eq!(ya.to_bits(), yb.to_bits());
    }
}

#[test]
fn modelnet_sample_is_deterministic_per_seed() {
    let cfg = ModelNetConfig::default();
    for label in [0u32, 4, 9] {
        let a = modelnet::sample(&cfg, label, 7);
        let b = modelnet::sample(&cfg, label, 7);
        assert_eq!(a.label, b.label);
        assert_bit_identical(&a.cloud, &b.cloud);
        let c = modelnet::sample(&cfg, label, 8);
        assert_ne!(a.cloud, c.cloud, "label {label}: seeds 7 and 8 collide");
    }
}

#[test]
fn shapenet_sample_is_deterministic_per_seed() {
    for &cat in &Category::ALL {
        let a = shapenet::sample(cat, 256, 5);
        let b = shapenet::sample(cat, 256, 5);
        assert_bit_identical(&a.cloud, &b.cloud);
        assert_eq!(a.cloud.labels(), b.cloud.labels());
        let c = shapenet::sample(cat, 256, 6);
        assert_ne!(a.cloud, c.cloud, "{cat:?}: seeds 5 and 6 collide");
    }
}

#[test]
fn gaussian_scene_is_deterministic_per_seed() {
    for kind in [SceneKind::TanksAndTemples, SceneKind::DeepBlending] {
        let a = gaussians::generate(kind, 300, 9);
        let b = gaussians::generate(kind, 300, 9);
        assert_eq!(a.gaussians.len(), b.gaussians.len());
        for (i, (x, y)) in a.gaussians.iter().zip(&b.gaussians).enumerate() {
            assert_eq!(
                x.center.x.to_bits(),
                y.center.x.to_bits(),
                "{kind:?} splat {i} center.x"
            );
            assert_eq!(x.scale, y.scale, "{kind:?} splat {i}");
            assert_eq!(x.yaw.to_bits(), y.yaw.to_bits(), "{kind:?} splat {i}");
            assert_eq!(
                x.opacity.to_bits(),
                y.opacity.to_bits(),
                "{kind:?} splat {i}"
            );
        }
        let c = gaussians::generate(kind, 300, 10);
        assert_ne!(a.gaussians, c.gaussians, "{kind:?}: seeds 9 and 10 collide");
    }
}
