//! Equivalence tests for overlapped frame execution: `Session::stream`
//! with `StreamOptions::workers(n)` must produce a `StreamReport`
//! bit-identical to the sequential path for every bucketing policy,
//! every worker count, and the truncated (`max_frames`) path — frames
//! are independent once compiled, so threading may only move wall time,
//! never results.

use proptest::prelude::*;
use streamgrid_core::apps::AppDomain;
use streamgrid_core::framework::{ExecMode, ExecuteOptions, StreamGrid};
use streamgrid_core::source::{
    ReplaySource, SizeBucketing, StreamOptions, StreamReport, SyntheticSource,
};
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const POLICIES: [SizeBucketing; 3] = [
    SizeBucketing::Exact,
    SizeBucketing::Pow2,
    SizeBucketing::Quantize(512),
];

fn csdt4() -> StreamGrid {
    StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)))
}

fn stream_sizes(sizes: &[u64], options: &StreamOptions) -> StreamReport {
    let mut session = csdt4().session(AppDomain::Classification.spec());
    session
        .stream(ReplaySource::new(sizes), options)
        .expect("CS+DT compiles and streams for any positive size")
}

/// The acceptance pin: every `(policy, workers)` combination reproduces
/// the sequential report bit for bit — including `solver_invocations`,
/// per-frame cycles, energy, and exec modes.
#[test]
fn workers_are_bit_identical_across_policies() {
    let sizes: Vec<u64> = (0..12u64).map(|i| 1100 + 173 * i).collect();
    for policy in POLICIES {
        let sequential = stream_sizes(&sizes, &StreamOptions::bucketed(policy));
        assert!(sequential.all_clean());
        for workers in WORKER_COUNTS {
            let parallel = stream_sizes(
                &sizes,
                &StreamOptions::bucketed(policy).with_workers(workers),
            );
            assert_eq!(
                parallel, sequential,
                "{policy:?} with {workers} workers diverged from sequential"
            );
        }
    }
}

/// The truncated path: `max_frames` caps an over-long source the same
/// way under every worker count, and the capped report equals the
/// sequential capped report.
#[test]
fn workers_respect_max_frames_identically() {
    let fw = csdt4();
    let sequential = {
        let mut session = fw.session(AppDomain::Classification.spec());
        session
            .stream(
                SyntheticSource::new(4 * 300, 100),
                &StreamOptions::default().with_max_frames(7),
            )
            .unwrap()
    };
    assert_eq!(sequential.frame_count(), 7);
    for workers in WORKER_COUNTS {
        let mut session = fw.session(AppDomain::Classification.spec());
        let parallel = session
            .stream(
                SyntheticSource::new(4 * 300, 100),
                &StreamOptions::default()
                    .with_max_frames(7)
                    .with_workers(workers),
            )
            .unwrap();
        assert_eq!(parallel, sequential, "{workers} workers broke max_frames");
    }
}

/// More workers than frames (and zero workers, the `Default` value) are
/// both safe: the executor clamps to the job count and to inline
/// execution respectively.
#[test]
fn degenerate_worker_counts_are_safe() {
    let sizes = [4 * 300u64, 4 * 450];
    let sequential = stream_sizes(&sizes, &StreamOptions::default());
    for workers in [0usize, 1, 64] {
        let parallel = stream_sizes(&sizes, &StreamOptions::workers(workers));
        assert_eq!(parallel, sequential, "workers = {workers}");
    }
    // An empty stream with workers requested is fine too.
    let empty = stream_sizes(&[], &StreamOptions::workers(8));
    assert_eq!(empty.frame_count(), 0);
}

/// Intra-frame sharding composes with inter-frame workers: for every
/// `(shards, workers)` pair the streamed frames carry the requested
/// sharded exec mode and every simulated field — schedule, run report,
/// energy — matches the sequential oracle stream bit for bit.
#[test]
fn sharded_frames_compose_with_workers() {
    use streamgrid_sim::EngineMode;
    let sizes: Vec<u64> = (0..6u64).map(|i| 900 + 211 * i).collect();
    let policy = SizeBucketing::Quantize(512);
    let oracle = stream_sizes(
        &sizes,
        &StreamOptions::bucketed(policy).with_exec(
            ExecuteOptions::for_spec(&AppDomain::Classification.spec())
                .with_exec_mode(ExecMode::CycleAccurate),
        ),
    );
    assert!(oracle.all_clean());
    for shards in [1u32, 2, 4, 8] {
        for workers in [1usize, 2, 4] {
            // Clamp off so the real multi-shard engine runs under every
            // worker count regardless of host cores (the clamp itself is
            // pinned in tests/shard_backoff.rs).
            let sharded = stream_sizes(
                &sizes,
                &StreamOptions::bucketed(policy)
                    .with_exec(
                        ExecuteOptions::for_spec(&AppDomain::Classification.spec())
                            .with_exec_mode(ExecMode::Sharded(shards))
                            .with_shard_clamp(false),
                    )
                    .with_workers(workers),
            );
            assert_eq!(sharded.frame_count(), oracle.frame_count());
            assert_eq!(sharded.solver_invocations, oracle.solver_invocations);
            for (got, want) in sharded.frames.iter().zip(oracle.frames.iter()) {
                assert_eq!(got.report.exec_mode, EngineMode::Sharded(shards));
                assert_eq!(got.frame, want.frame);
                assert_eq!(got.scheduled_elements, want.scheduled_elements);
                assert_eq!(got.report.compile, want.report.compile);
                assert_eq!(
                    got.report.run, want.report.run,
                    "frame {} diverged at {shards} shards x {workers} workers",
                    got.frame.id
                );
            }
        }
    }
}

/// `run_batch_parallel` is now a thin wrapper over the same executor:
/// same reports as the sequential batch and as a worker-fanned stream
/// of the same sizes.
#[test]
fn run_batch_parallel_matches_stream_workers() {
    let sizes = [4 * 300u64, 4 * 450, 4 * 600, 4 * 300, 4 * 450];
    let fw = csdt4();
    let mut batch = fw.session(AppDomain::Registration.spec());
    let batch_reports = batch.run_batch_parallel(&sizes).unwrap();
    let mut stream = fw.session(AppDomain::Registration.spec());
    let stream_report = stream
        .stream(ReplaySource::new(&sizes), &StreamOptions::workers(4))
        .unwrap();
    assert_eq!(
        stream_report
            .frames
            .iter()
            .map(|f| &f.report)
            .collect::<Vec<_>>(),
        batch_reports.iter().collect::<Vec<_>>()
    );
    assert_eq!(batch.solver_invocations(), stream.solver_invocations());
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// For any random frame-size sequence, policy, and worker count,
    /// the parallel report equals the sequential one bit for bit.
    #[test]
    fn prop_workers_never_change_reports(
        raw in prop::collection::vec(1u64..40, 1..9),
        policy_idx in 0usize..3,
        workers in 2usize..9,
    ) {
        let sizes: Vec<u64> = raw.iter().map(|s| s * 120).collect();
        let policy = POLICIES[policy_idx];
        let sequential = stream_sizes(&sizes, &StreamOptions::bucketed(policy));
        let parallel = stream_sizes(
            &sizes,
            &StreamOptions::bucketed(policy).with_workers(workers),
        );
        prop_assert_eq!(
            parallel,
            sequential,
            "{:?} with {} workers over {:?}",
            policy,
            workers,
            sizes
        );
    }
}
