//! Property-based tests on the spatial substrate: every search structure
//! must agree with the brute-force oracle, and the codecs/orders must
//! roundtrip.

use proptest::prelude::*;
use streamgrid_pointcloud::{morton, Aabb, ChunkGrid, GridDims, Point3};
use streamgrid_spatial::kdtree::{KdTree, StepBudget, TraversalOrder};
use streamgrid_spatial::octree::Octree;
use streamgrid_spatial::sort::{bitonic_sort_by_key, inversion_fraction};
use streamgrid_spatial::{bruteforce, ChunkedIndex};

fn arb_point() -> impl Strategy<Value = Point3> {
    (-50.0f32..50.0, -50.0f32..50.0, -50.0f32..50.0).prop_map(|(x, y, z)| Point3::new(x, y, z))
}

fn arb_cloud(max: usize) -> impl Strategy<Value = Vec<Point3>> {
    prop::collection::vec(arb_point(), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kdtree_knn_matches_bruteforce(pts in arb_cloud(300), q in arb_point(), k in 1usize..16) {
        let tree = KdTree::build(&pts);
        let (hits, stats) = tree.knn(&pts, q, k, StepBudget::Unlimited);
        let expected = bruteforce::knn(&pts, q, k);
        prop_assert!(stats.completed);
        prop_assert_eq!(hits.len(), expected.len());
        for (h, e) in hits.iter().zip(&expected) {
            prop_assert!((h.dist_sq - e.dist_sq).abs() < 1e-4);
        }
    }

    #[test]
    fn kdtree_fixed_order_is_still_exact(pts in arb_cloud(200), q in arb_point()) {
        let tree = KdTree::build(&pts);
        let (a, _) = tree.knn(&pts, q, 4, StepBudget::Unlimited);
        let (b, _) = tree.knn_with_order(&pts, q, 4, StepBudget::Unlimited, TraversalOrder::Fixed);
        let da: Vec<f32> = a.iter().map(|n| n.dist_sq).collect();
        let db: Vec<f32> = b.iter().map(|n| n.dist_sq).collect();
        prop_assert_eq!(da, db);
    }

    #[test]
    fn kdtree_range_matches_bruteforce(pts in arb_cloud(300), q in arb_point(), r in 0.0f32..40.0) {
        let tree = KdTree::build(&pts);
        let (hits, _) = tree.range(&pts, q, r, StepBudget::Unlimited);
        let expected = bruteforce::range(&pts, q, r);
        let mut a: Vec<u32> = hits.iter().map(|n| n.index).collect();
        let mut b: Vec<u32> = expected.iter().map(|n| n.index).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn capped_search_never_beats_exact(pts in arb_cloud(300), q in arb_point(), cap in 1u64..50) {
        let tree = KdTree::build(&pts);
        let exact = tree.knn(&pts, q, 4, StepBudget::Unlimited).0;
        let capped = tree.knn(&pts, q, 4, StepBudget::Capped(cap)).0;
        // Deterministic termination returns a superset-distance result:
        // its best candidate can never be closer than the true nearest.
        if let (Some(e), Some(c)) = (exact.first(), capped.first()) {
            prop_assert!(c.dist_sq >= e.dist_sq - 1e-6);
        }
        // And the step count respects the deadline.
        let (_, stats) = tree.knn(&pts, q, 4, StepBudget::Capped(cap));
        prop_assert!(stats.steps <= cap);
    }

    #[test]
    fn octree_knn_matches_bruteforce(pts in arb_cloud(250), q in arb_point(), k in 1usize..8) {
        let bounds = Aabb::from_points(pts.iter().copied()).unwrap().inflated(1.0);
        let mut tree = Octree::new(bounds, 8);
        tree.insert_slice(&pts, 0);
        let hits = tree.knn(&pts, q, k, StepBudget::Unlimited).0;
        let expected = bruteforce::knn(&pts, q, k);
        prop_assert_eq!(hits.len(), expected.len());
        for (h, e) in hits.iter().zip(&expected) {
            prop_assert!((h.dist_sq - e.dist_sq).abs() < 1e-4);
        }
    }

    #[test]
    fn chunked_adaptive_matches_bruteforce(pts in arb_cloud(300), q in arb_point(), k in 1usize..8) {
        let bounds = Aabb::from_points(pts.iter().copied()).unwrap().inflated(0.1);
        let grid = ChunkGrid::new(bounds, GridDims::new(3, 3, 2));
        let idx = ChunkedIndex::build(&pts, grid);
        let (hits, _) = idx.knn_adaptive(q, k, StepBudget::Unlimited);
        let expected = bruteforce::knn(&pts, q, k);
        prop_assert_eq!(hits.len(), expected.len());
        for (h, e) in hits.iter().zip(&expected) {
            prop_assert!((h.dist_sq - e.dist_sq).abs() < 1e-4);
        }
    }

    #[test]
    fn morton_roundtrip(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
        prop_assert_eq!(morton::decode(morton::encode(x, y, z)), (x, y, z));
    }

    #[test]
    fn morton_preserves_axis_order(x1 in 0u32..1000, x2 in 0u32..1000) {
        // Along a single axis, Morton order equals coordinate order.
        let a = morton::encode(x1, 0, 0);
        let b = morton::encode(x2, 0, 0);
        prop_assert_eq!(a < b, x1 < x2);
    }

    #[test]
    fn bitonic_sorts_anything(mut v in prop::collection::vec(-1e6f32..1e6, 0..300)) {
        bitonic_sort_by_key(&mut v, |x| *x);
        prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn inversion_fraction_of_sorted_is_zero(mut v in prop::collection::vec(-100.0f32..100.0, 2..100)) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(inversion_fraction(&v), 0.0);
    }

    #[test]
    fn partition_is_a_partition(pts in arb_cloud(200), nx in 1u32..5, ny in 1u32..5) {
        let bounds = Aabb::from_points(pts.iter().copied()).unwrap().inflated(0.1);
        let grid = ChunkGrid::new(bounds, GridDims::new(nx, ny, 1));
        let part = grid.partition(&pts);
        let mut seen = vec![false; pts.len()];
        for (_, idxs) in part.iter() {
            for &i in idxs {
                prop_assert!(!seen[i as usize], "point assigned twice");
                seen[i as usize] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }
}
