//! Equivalence guarantee of the execution layer: under deterministic
//! termination the event-driven engine must reproduce the cycle-accurate
//! oracle's `RunReport` **bit for bit** — on every paper preset, on
//! randomly generated DAG schedules, and under cycle-budget truncation.
//! The sharded engine is held to the same contract at every shard count
//! (it must be exact under *any* latency model, not just DT).
//!
//! This is the contract `streamgrid_sim::engine::{event, shard}` is held
//! to; any divergence here means a fast path changed semantics, not just
//! speed.

use proptest::prelude::*;
use streamgrid_core::framework::{ExecMode, ExecuteOptions, StreamGrid};
use streamgrid_core::registry::PipelineRegistry;
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
use streamgrid_dataflow::{DataflowGraph, Shape};
use streamgrid_optimizer::{edge_infos, optimize, plan_multi_chunk, OptimizeConfig};
use streamgrid_sim::{run_with, EnergyModel, EngineConfig, EngineMode};

/// Shard counts the sharded engine is swept over: degenerate (1), the
/// Auto default neighborhood, and more shards than some designs have
/// stages (8) so the never-empty-cut clamp is exercised.
const SHARD_SWEEP: [u32; 4] = [1, 2, 4, 8];

/// Every registry preset, across chunk counts spanning warm-up-only runs
/// (1 chunk) to steady-state-dominated sweeps: all engines, one report.
#[test]
fn registry_presets_equivalent_across_chunk_counts() {
    let registry = PipelineRegistry::with_paper_apps();
    for spec in registry.specs() {
        for n_chunks in [1u64, 2, 4, 9, 16, 48] {
            let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(
                n_chunks as u32,
                2,
            )));
            let compiled = fw
                .compile_spec(spec, n_chunks * 300)
                .expect("preset compiles");
            let oracle = compiled
                .execute(&ExecuteOptions::for_spec(spec).with_exec_mode(ExecMode::CycleAccurate));
            let event = compiled
                .execute(&ExecuteOptions::for_spec(spec).with_exec_mode(ExecMode::EventDriven));
            assert_eq!(oracle.exec_mode, EngineMode::CycleAccurate);
            assert_eq!(event.exec_mode, EngineMode::EventDriven);
            assert_eq!(
                oracle.run,
                event.run,
                "{} at {} chunks: engines diverged",
                spec.name(),
                n_chunks
            );
            for shards in SHARD_SWEEP {
                // Clamp off: the sweep's point is running the *real*
                // multi-shard engine even where the host has fewer
                // cores (clamp policy is pinned in tests/shard_backoff.rs).
                let sharded = compiled.execute(
                    &ExecuteOptions::for_spec(spec)
                        .with_exec_mode(ExecMode::Sharded(shards))
                        .with_shard_clamp(false),
                );
                assert_eq!(sharded.exec_mode, EngineMode::Sharded(shards));
                assert_eq!(sharded.exec_requested, ExecMode::Sharded(shards));
                assert_eq!(
                    oracle.run,
                    sharded.run,
                    "{} at {} chunks / {} shards: sharded engine diverged",
                    spec.name(),
                    n_chunks,
                    shards
                );
            }
            assert!(oracle.is_clean(), "{}: CS+DT must run clean", spec.name());
        }
    }
}

/// The `Auto` default picks the event engine for deterministic designs
/// and reproduces exactly what the oracle would have reported.
#[test]
fn auto_mode_is_equivalent_to_forced_oracle() {
    let registry = PipelineRegistry::with_paper_apps();
    let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(9, 2)));
    for spec in registry.specs() {
        let mut session = fw.session(spec.clone());
        let auto = session.run(9 * 300).expect("runs");
        let oracle = session
            .run_with(
                9 * 300,
                &ExecuteOptions::for_spec(spec).with_exec_mode(ExecMode::CycleAccurate),
            )
            .expect("runs");
        assert_eq!(auto.exec_mode, EngineMode::EventDriven, "{}", spec.name());
        assert_eq!(auto.run, oracle.run, "{}", spec.name());
    }
}

/// A random stage descriptor: (kind, points-per-burst, depth, reuse).
#[derive(Debug, Clone)]
enum StageKind {
    Map { shape: u32, depth: u32 },
    Stencil { reuse: u32, depth: u32 },
    Reduction { factor: u32, depth: u32 },
    Global { group: u32, freq: u32, depth: u32 },
}

fn arb_stage() -> impl Strategy<Value = StageKind> {
    prop_oneof![
        (1u32..4, 0u32..8).prop_map(|(shape, depth)| StageKind::Map { shape, depth }),
        (2u32..5, 0u32..6).prop_map(|(reuse, depth)| StageKind::Stencil { reuse, depth }),
        (2u32..8, 0u32..6).prop_map(|(factor, depth)| StageKind::Reduction { factor, depth }),
        (1u32..6, 1u32..8, 1u32..10).prop_map(|(group, freq, depth)| StageKind::Global {
            group,
            freq,
            depth
        }),
    ]
}

/// Builds a pipeline from random stages. `skip_from` (when in range)
/// adds a second consumer edge partway down the chain, turning the
/// pipeline into a genuine DAG: one producer fans out to the next stage
/// *and* to the final pre-sink stage, which then joins two streams of
/// different volumes.
fn build_pipeline(stages: &[StageKind], skip_from: usize) -> DataflowGraph {
    let mut g = DataflowGraph::new();
    let attrs = 2u32;
    let mut prev = g.source("src", Shape::new(1, attrs), 1);
    let mut nodes = vec![prev];
    for (i, s) in stages.iter().enumerate() {
        let node = match *s {
            StageKind::Map { shape, depth } => g.map(
                &format!("map{i}"),
                Shape::new(1, attrs),
                Shape::new(shape, attrs),
                depth,
            ),
            StageKind::Stencil { reuse, depth } => g.stencil(
                &format!("stencil{i}"),
                Shape::new(1, attrs),
                Shape::new(1, attrs),
                depth,
                (reuse, 1),
            ),
            StageKind::Reduction { factor, depth } => g.reduction(
                &format!("reduce{i}"),
                Shape::new(1, attrs),
                Shape::new(1, attrs),
                depth,
                factor,
            ),
            StageKind::Global { group, freq, depth } => g.global_op(
                &format!("global{i}"),
                Shape::new(1, attrs),
                1,
                Shape::new(group, attrs),
                freq,
                (1, 1),
                depth,
            ),
        };
        g.connect(prev, node);
        prev = node;
        nodes.push(node);
    }
    let sink = g.sink("sink", Shape::new(1, attrs), 1);
    g.connect(prev, sink);
    // Optional fan-out: a mid-chain producer also feeds the last stage
    // directly (attrs are uniform, so the shapes always agree).
    if skip_from + 2 < nodes.len() {
        let from = nodes[skip_from];
        let to = *nodes.last().expect("nonempty");
        if !g.contains_edge(from, to) {
            g.connect(from, to);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random valid DAG schedules: whatever the oracle reports — clean,
    /// starved, overflowing, or truncated — the event engine reports the
    /// same bits.
    #[test]
    fn random_dag_schedules_run_identically_on_both_engines(
        stages in prop::collection::vec(arb_stage(), 1..6),
        skip_from in 0usize..6,
        chunk_points in 50u64..400,
        n_chunks in 1u64..13,
        budget_divisor in 1u64..5,
    ) {
        let g = build_pipeline(&stages, skip_from);
        prop_assume!(g.validate().is_ok());
        let elements = chunk_points * 2;
        let edges = edge_infos(&g, elements);
        prop_assume!(edges.iter().all(|e| e.volume > 0));
        let schedule = match optimize(&g, &OptimizeConfig::new(elements)) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::fail(format!("optimize failed: {e}"))),
        };
        let plan = plan_multi_chunk(&g, &edges);
        let energy = EnergyModel::default();
        let full = EngineConfig { n_chunks, ..EngineConfig::default() };
        let oracle = run_with(&g, &edges, &schedule, &plan, &energy, &full,
                              EngineMode::CycleAccurate);
        let event = run_with(&g, &edges, &schedule, &plan, &energy, &full,
                             EngineMode::EventDriven);
        prop_assert_eq!(&oracle, &event, "full-budget divergence");
        for shards in SHARD_SWEEP {
            let sharded = run_with(&g, &edges, &schedule, &plan, &energy, &full,
                                   EngineMode::Sharded(shards));
            prop_assert_eq!(&oracle, &sharded, "sharded divergence at {} shards", shards);
        }

        // Truncated runs must agree too: slice the budget to a fraction
        // of the observed run length.
        let truncated = EngineConfig {
            n_chunks,
            max_cycles: (oracle.cycles / budget_divisor).max(1),
            ..EngineConfig::default()
        };
        let oracle_t = run_with(&g, &edges, &schedule, &plan, &energy, &truncated,
                                EngineMode::CycleAccurate);
        let event_t = run_with(&g, &edges, &schedule, &plan, &energy, &truncated,
                               EngineMode::EventDriven);
        prop_assert_eq!(&oracle_t, &event_t, "truncated-budget divergence");
        for shards in SHARD_SWEEP {
            let sharded_t = run_with(&g, &edges, &schedule, &plan, &energy, &truncated,
                                     EngineMode::Sharded(shards));
            prop_assert_eq!(&oracle_t, &sharded_t,
                            "truncated sharded divergence at {} shards", shards);
        }
        if budget_divisor > 1 && oracle_t.overflow_edge.is_none() && oracle_t.cycles < oracle.cycles {
            prop_assert!(oracle_t.truncated, "partial run must be flagged");
        }
    }
}
