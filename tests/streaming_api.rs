//! Contract tests for the streaming ingestion API: `FrameSource` →
//! `Session::stream` → `StreamReport`, including the acceptance pin —
//! a 64-frame LiDAR stream under quantized bucketing pays strictly
//! fewer ILP solves than it executes frames, with every frame clean.

use std::collections::HashSet;

use streamgrid_core::apps::AppDomain;
use streamgrid_core::framework::StreamGrid;
use streamgrid_core::source::{
    DatasetSource, FrameSource, ReplaySource, SizeBucketing, StreamOptions, SyntheticSource,
};
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
use streamgrid_pointcloud::datasets::lidar::{trajectory, LidarConfig, Scene};
use streamgrid_pointcloud::datasets::modelnet::ModelNetConfig;
use streamgrid_pointcloud::datasets::stream::{LidarStream, ModelNetStream, ShapeNetStream};

fn csdt4() -> StreamGrid {
    StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)))
}

fn small_lidar(frames: usize) -> LidarStream {
    LidarStream::new(
        Scene::urban(11, 30.0, 10, 6),
        LidarConfig {
            beams: 4,
            azimuth_steps: 90,
            ..LidarConfig::default()
        },
        trajectory(frames, 0.4, 0.004),
        100,
    )
}

/// The acceptance pin: 64 LiDAR frames, quantized buckets, strictly
/// fewer solves than frames, all frames clean.
#[test]
fn lidar_stream_64_frames_quantized_amortizes_solves() {
    let mut session = csdt4().session(AppDomain::Registration.spec());
    let source = DatasetSource::new(small_lidar(64));
    let report = session
        .stream(
            source,
            &StreamOptions::bucketed(SizeBucketing::Quantize(256)),
        )
        .expect("the registration pipeline streams CS+DT clean");

    assert_eq!(report.frame_count(), 64);
    assert!(
        report.solver_invocations < 64,
        "bucketing must amortize: {} solves for 64 frames",
        report.solver_invocations
    );
    assert!(report.solver_invocations >= 1, "a fresh session must solve");
    for frame in &report.frames {
        assert!(
            frame.report.is_clean(),
            "frame {}: CS+DT must run overflow-, stall- and truncation-free",
            frame.frame.id
        );
        assert!(frame.scheduled_elements >= frame.frame.elements);
        assert_eq!(
            frame.scheduled_elements,
            SizeBucketing::Quantize(256).bucket(frame.frame.elements)
        );
    }
    // Sweep sizes genuinely drift (otherwise the pin is vacuous) …
    let distinct_sizes: HashSet<u64> = report.frames.iter().map(|f| f.frame.elements).collect();
    assert!(distinct_sizes.len() > 1, "LiDAR sweeps should vary in size");
    // … and the session cache, not per-frame luck, is what amortized.
    assert_eq!(
        session.solver_invocations(),
        report.solver_invocations,
        "a fresh session's stream pays exactly the session's solves"
    );
    assert!(report.frames_per_solve() > 1.0);
}

/// `run`/`run_batch` stay source-compatible wrappers: same signatures,
/// same reports as the pre-streaming surface (fresh one-shot executes).
#[test]
fn scalar_surface_remains_source_compatible() {
    let fw = csdt4();
    let mut session = fw.session(AppDomain::Classification.spec());
    let single = session.run(4 * 300).unwrap();
    let fresh = fw.execute(AppDomain::Classification, 4 * 300).unwrap();
    assert_eq!(single, fresh);

    let sizes = [4 * 300u64, 4 * 450, 4 * 300];
    let batch = session.run_batch(&sizes).unwrap();
    assert_eq!(batch.len(), sizes.len());
    for (&total, report) in sizes.iter().zip(&batch) {
        let fresh = fw.execute(AppDomain::Classification, total).unwrap();
        assert_eq!(report, &fresh, "run_batch diverged at {total} elements");
    }
    // The wrappers share the stream path's cache: 2 distinct sizes plus
    // the earlier run() = 2 solves in total.
    assert_eq!(session.solver_invocations(), 2);
}

/// A synthetic fixed-size stream is the degenerate case: one solve,
/// identical frames, identical reports.
#[test]
fn synthetic_stream_solves_once() {
    let mut session = csdt4().session(AppDomain::Classification.spec());
    let report = session
        .stream(SyntheticSource::new(4 * 300, 10), &StreamOptions::default())
        .unwrap();
    assert_eq!(report.frame_count(), 10);
    assert_eq!(report.solver_invocations, 1);
    assert!(report.all_clean());
    let first = &report.frames[0].report;
    assert!(report.frames.iter().all(|f| &f.report == first));
    assert_eq!(report.p50_frame_cycles(), report.max_frame_cycles());
}

/// Every dataset stream drives the session through the DatasetSource
/// bridge: ModelNet and ShapeNet streams execute clean end to end.
#[test]
fn dataset_streams_execute_through_sessions() {
    let mut session = csdt4().session(AppDomain::Classification.spec());
    let modelnet = ModelNetStream::new(
        ModelNetConfig {
            classes: 10,
            points: 200,
            noise: 0.01,
        },
        6,
        3,
    );
    let report = session
        .stream(
            DatasetSource::new(modelnet),
            &StreamOptions::bucketed(SizeBucketing::Pow2),
        )
        .unwrap();
    assert_eq!(report.frame_count(), 6);
    // Fixed 200-point clouds: one bucket, one solve.
    assert_eq!(report.solver_invocations, 1);
    assert!(report.all_clean());
    assert_eq!(report.source_elements(), 6 * 200 * 3);

    let mut session = csdt4().session(AppDomain::Segmentation.spec());
    let report = session
        .stream(
            DatasetSource::new(ShapeNetStream::new(150, 4, 9)),
            &StreamOptions::default(),
        )
        .unwrap();
    assert_eq!(report.frame_count(), 4);
    assert!(report.all_clean());
    for frame in &report.frames {
        assert_eq!(frame.frame.stats.points, 150);
        assert_eq!(frame.frame.elements, 450);
    }
}

/// The source element accounting survives the bridge: frame stats carry
/// the point counts the clouds actually had.
#[test]
fn dataset_source_frames_track_cloud_sizes() {
    let scans: Vec<_> = small_lidar(5).collect();
    let mut source = DatasetSource::new(scans.iter().map(|s| s.cloud.clone()));
    for (i, scan) in scans.iter().enumerate() {
        let frame = source.next_frame().unwrap();
        assert_eq!(frame.id, i as u64);
        assert_eq!(frame.stats.points, scan.cloud.len() as u64);
        assert_eq!(frame.elements, scan.cloud.len() as u64 * 3);
    }
    assert!(source.next_frame().is_none());
}

/// Exact replay through `stream` equals the same sizes through the
/// legacy batch surface, report for report.
#[test]
fn stream_and_run_batch_agree() {
    let sizes: Vec<u64> = (0..6).map(|i| 1200 + 37 * i).collect();
    let fw = csdt4();
    let mut a = fw.session(AppDomain::NeuralRendering.spec());
    let mut b = fw.session(AppDomain::NeuralRendering.spec());
    let stream = a
        .stream(ReplaySource::new(&sizes), &StreamOptions::default())
        .unwrap();
    let batch = b.run_batch(&sizes).unwrap();
    assert_eq!(
        stream.frames.iter().map(|f| &f.report).collect::<Vec<_>>(),
        batch.iter().collect::<Vec<_>>()
    );
    assert_eq!(a.solver_invocations(), b.solver_invocations());
}

/// A `FrameSource` written against the original trait surface — only
/// `next_frame` implemented — keeps its exact pre-existing behavior:
/// `size_hint` defaults to fully-unknown `(0, None)` and the admission
/// hint `remaining_frames` (derived from it) to `None`, so old sources
/// stream unchanged and are simply charged the server's default
/// projection. Library sources expose exact hints.
#[test]
fn frame_source_default_impls_stay_backward_compatible() {
    use streamgrid_core::source::Frame;

    struct MinimalSource(u64);
    impl FrameSource for MinimalSource {
        fn next_frame(&mut self) -> Option<Frame> {
            if self.0 == 0 {
                return None;
            }
            self.0 -= 1;
            Some(Frame::synthetic(self.0, 1200))
        }
    }

    let minimal = MinimalSource(3);
    assert_eq!(minimal.size_hint(), (0, None));
    assert_eq!(minimal.remaining_frames(), None);
    // …and it still streams exactly like a hinted source.
    let mut session = csdt4().session(AppDomain::Classification.spec());
    let report = session
        .stream(MinimalSource(3), &StreamOptions::default())
        .unwrap();
    assert_eq!(report.frame_count(), 3);
    assert!(report.all_clean());

    // Library sources expose exact remaining-frame hints that count
    // down as frames are pulled.
    let mut synthetic = SyntheticSource::new(1200, 4);
    assert_eq!(synthetic.remaining_frames(), Some(4));
    synthetic.next_frame();
    assert_eq!(synthetic.remaining_frames(), Some(3));
    let replay = ReplaySource::new(&[5, 9, 13]);
    assert_eq!(replay.remaining_frames(), Some(3));
}

/// `p99_frame_cycles` joins the p50/p95/max aggregates and orders as a
/// percentile must: p50 ≤ p95 ≤ p99 ≤ max.
#[test]
fn stream_report_p99_orders_between_p95_and_max() {
    let sizes: Vec<u64> = (0..12).map(|i| 1200 + 120 * i).collect();
    let mut session = csdt4().session(AppDomain::Classification.spec());
    let report = session
        .stream(ReplaySource::new(&sizes), &StreamOptions::default())
        .unwrap();
    assert!(report.p50_frame_cycles() <= report.p95_frame_cycles());
    assert!(report.p95_frame_cycles() <= report.p99_frame_cycles());
    assert!(report.p99_frame_cycles() <= report.max_frame_cycles());
    assert!(report.p99_frame_cycles() > 0);
}
