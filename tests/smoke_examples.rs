//! Smoke tests: each `examples/` main path exercised as library calls.
//!
//! Every example must keep working as the workspace grows, but examples
//! are binaries and never run under `cargo test`. These tests replay
//! each example's flow at reduced scale and assert the outputs are
//! finite and non-degenerate, so a regression in any example's path
//! fails the tier-1 suite instead of being discovered by hand.

use streamgrid_core::apps::AppDomain;
use streamgrid_core::framework::{ExecuteOptions, StreamGrid};
use streamgrid_core::pipeline::PipelineSpec;
use streamgrid_core::registry::PipelineRegistry;
use streamgrid_core::source::{DatasetSource, SizeBucketing, StreamOptions};
use streamgrid_core::transform::{SplitConfig, StreamGridConfig};
use streamgrid_dataflow::Shape;
use streamgrid_nn::pointnet::ClsNet;
use streamgrid_nn::sampling::SearchMode;
use streamgrid_nn::train::{eval_classifier, train_classifier, ClsSample, TrainConfig};
use streamgrid_pointcloud::datasets::gaussians::{generate, SceneKind};
use streamgrid_pointcloud::datasets::lidar::{trajectory, LidarConfig, Scene};
use streamgrid_pointcloud::datasets::modelnet::{self, ModelNetConfig};
use streamgrid_pointcloud::datasets::stream::LidarStream;
use streamgrid_pointcloud::{GridDims, Point3};
use streamgrid_registration::icp::{CorrespondenceMode, IcpConfig};
use streamgrid_registration::odometry::{run_odometry, trajectory_error, OdometryConfig};
use streamgrid_splat::{psnr, render, Camera, SortMode};

/// `examples/quickstart.rs`: Base vs CS vs CS+DT through one reusable
/// session over the classification preset.
#[test]
fn quickstart_path() {
    let elements = 1024 * 3;
    let options = ExecuteOptions {
        seed: 42,
        ..ExecuteOptions::for_domain(AppDomain::Classification)
    };
    let mut session =
        StreamGrid::new(StreamGridConfig::base()).session(AppDomain::Classification.spec());
    let mut onchip = Vec::new();
    for config in [
        StreamGridConfig::base(),
        StreamGridConfig::cs(SplitConfig::paper_cls()),
        StreamGridConfig::cs_dt(SplitConfig::paper_cls()),
    ] {
        session.set_config(config);
        let report = session
            .run_with(elements, &options)
            .expect("pipeline compiles and runs");
        assert!(report.run.cycles > 0);
        assert!(report.total_uj().is_finite() && report.total_uj() > 0.0);
        assert!(report.dram_bytes() > 0);
        onchip.push(report.onchip_bytes());
    }
    let (base, csdt) = (onchip[0], onchip[2]);
    assert!(
        csdt < base,
        "CS+DT buffers ({csdt}) must undercut Base ({base})"
    );
    assert_eq!(
        session.solver_invocations(),
        3,
        "one ILP solve per variant config"
    );
}

/// `examples/custom_pipeline.rs`: a non-paper pipeline (voxel downsample
/// → normal estimation → kNN grouping) through builder, registry, and
/// session, CS+DT clean.
#[test]
fn custom_pipeline_path() {
    let mut b = PipelineSpec::builder("voxel_normals_knn");
    b.macs_per_element(96.0);
    let src = b.source("cloud_reader", Shape::new(1, 3), 1);
    let voxel = b.reduction("voxel_downsample", Shape::new(1, 3), Shape::new(1, 3), 3, 8);
    let normals = b.stencil(
        "normal_estimation",
        Shape::new(1, 3),
        Shape::new(1, 6),
        5,
        (9, 1),
    );
    let knn = b.global_op(
        "knn_group",
        Shape::new(1, 6),
        1,
        Shape::new(4, 6),
        8,
        (1, 1),
        8,
    );
    let sink = b.sink("features", Shape::new(4, 6), 1);
    b.connect(src, voxel)
        .connect(voxel, normals)
        .connect(normals, knn)
        .connect(knn, sink);
    let spec = b.build().expect("the custom pipeline validates");

    let mut registry = PipelineRegistry::with_paper_apps();
    registry.register(spec).expect("name is free");
    let spec = registry.resolve("voxel_normals_knn").unwrap().clone();

    let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)));
    let mut session = fw.session(spec);
    let sizes = [4 * 512 * 3, 4 * 1024 * 3, 4 * 512 * 3];
    let reports = session.run_batch(&sizes).expect("CS+DT compiles and runs");
    for (i, report) in reports.iter().enumerate() {
        assert!(report.is_clean(), "cloud {i}: CS+DT must run clean");
        assert!(
            report.run.cycles > 0 && report.total_uj() > 0.0,
            "cloud {i}"
        );
    }
    assert_eq!(
        session.solver_invocations(),
        2,
        "two distinct chunkings, one solve each"
    );
}

fn cls_dataset(per_class: usize, classes: usize, points: usize, seed: u64) -> Vec<ClsSample> {
    let cfg = ModelNetConfig {
        classes: 10,
        points,
        noise: 0.01,
    };
    let mut out = Vec::new();
    for class in 0..classes as u32 {
        for i in 0..per_class {
            let s = modelnet::sample(&cfg, class, seed ^ ((class as u64) << 32) ^ i as u64);
            out.push((s.cloud.points().to_vec(), class));
        }
    }
    out
}

/// `examples/classification.rs`: integrated co-training at toy scale.
#[test]
fn classification_path() {
    let classes = 3;
    let train = cls_dataset(4, classes, 96, 1);
    let test = cls_dataset(3, classes, 96, 999);
    let streaming = SearchMode::paper_cls();
    let mut net = ClsNet::new(classes, 7);
    let stats = train_classifier(
        &mut net,
        &train,
        &TrainConfig {
            epochs: 4,
            lr: 0.003,
            seed: 0,
            mode: streaming.clone(),
            batch: 4,
        },
    );
    assert!(
        stats.epoch_losses.iter().all(|l| l.is_finite()),
        "loss diverged: {:?}",
        stats.epoch_losses
    );
    let acc = eval_classifier(&net, &test, &streaming);
    assert!((0.0..=1.0).contains(&acc), "accuracy {acc} out of range");
    // Non-degenerate: the net must not collapse below chance on the
    // (easy, synthetic) held-out set after training.
    assert!(
        acc >= 1.0 / classes as f64 - 1e-9,
        "accuracy {acc} below chance"
    );
}

/// `examples/lidar_odometry.rs`: exact vs CS+DT correspondence search,
/// then the same sweeps streamed through `Session::stream` on the
/// registration pipeline with quantized compile buckets.
#[test]
fn lidar_odometry_path() {
    let lidar = LidarConfig {
        beams: 6,
        azimuth_steps: 240,
        ..LidarConfig::default()
    };
    let truth = trajectory(4, 0.4, 0.004);
    let scans: Vec<_> =
        LidarStream::new(Scene::urban(11, 30.0, 10, 6), lidar, truth.clone(), 100).collect();
    for mode in [
        CorrespondenceMode::Exact,
        CorrespondenceMode::paper_registration(),
    ] {
        let config = OdometryConfig {
            icp: IcpConfig {
                mode: mode.clone(),
                ..IcpConfig::default()
            },
            ..OdometryConfig::default()
        };
        let poses = run_odometry(&scans, &config);
        assert_eq!(poses.len(), truth.len());
        let err = trajectory_error(&poses, &truth);
        assert!(err.translation_pct.is_finite(), "{mode:?}");
        assert!(err.rotation_deg.is_finite(), "{mode:?}");
        assert!(
            err.endpoint_drift_pct.is_finite() && err.endpoint_drift_pct < 100.0,
            "{mode:?}: drift {}%",
            err.endpoint_drift_pct
        );
    }

    // The execution half of the example: the same sweeps through the
    // registration pipeline via the streaming ingestion surface.
    let fw = StreamGrid::new(StreamGridConfig::cs_dt(SplitConfig::linear(4, 2)));
    let mut session = fw.session(AppDomain::Registration.spec());
    let report = session
        .stream(
            DatasetSource::new(scans.iter().map(|s| s.cloud.clone())),
            &StreamOptions::bucketed(SizeBucketing::Quantize(1024)),
        )
        .expect("the registration pipeline streams CS+DT clean");
    assert_eq!(report.frame_count(), scans.len() as u64);
    assert!(report.all_clean(), "every streamed frame must run clean");
    assert!(
        report.solver_invocations <= report.frame_count(),
        "bucketing can never pay more solves than frames"
    );
    assert!(report.solver_invocations >= 1);
    assert!(report.total_cycles() > 0 && report.total_uj() > 0.0);
    assert!(report.p50_frame_cycles() <= report.max_frame_cycles());
}

/// `examples/splat_render.rs`: global vs chunked depth sorting.
#[test]
fn splat_render_path() {
    let scene = generate(SceneKind::DeepBlending, 1200, 5);
    let camera = Camera::look_at(
        scene.bounds.center() + Point3::new(0.0, -scene.bounds.extent().y * 1.2, 4.0),
        scene.bounds.center(),
        55.0,
        80,
        60,
    );
    let (reference, ref_stats) = render(&scene, &camera, SortMode::Global);
    assert!(ref_stats.splats_drawn > 0, "reference render drew nothing");
    let dims = GridDims::new(8, 6, 8);
    let (chunked, _) = render(&scene, &camera, SortMode::Chunked { dims });
    let quality = psnr(&reference, &chunked);
    assert!(
        quality.is_finite() && quality > 20.0,
        "chunked sorting degraded PSNR to {quality:.1} dB"
    );
}
