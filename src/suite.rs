//! Umbrella crate: re-exports every StreamGrid crate for examples and
//! integration tests at the workspace root.

pub use streamgrid_core as core;
pub use streamgrid_dataflow as dataflow;
pub use streamgrid_ilp as ilp;
pub use streamgrid_nn as nn;
pub use streamgrid_optimizer as optimizer;
pub use streamgrid_pointcloud as pointcloud;
pub use streamgrid_registration as registration;
pub use streamgrid_serve as serve;
pub use streamgrid_sim as sim;
pub use streamgrid_spatial as spatial;
pub use streamgrid_splat as splat;
